"""E7 — Section 6.2 ablation: randomized-rounding probability law.

Paper: "While LPRR rounds off the beta values to the closest integer
with higher probability, we also tested another version that rounds off
up or down randomly with equal probability. It is interesting to note
that this version performed much worse than LPRR."

Also measured: the engineering variant that eagerly fixes every
already-integral beta after each LP solve (same rounding law, far fewer
LP solves), quantifying the cost of paper-faithful one-route-per-solve.
"""

import numpy as np

from repro.core.problem import SteadyStateProblem
from repro.experiments import sample_settings, spec_for
from repro.experiments.config import DEFAULT_SCENARIO, payoffs_for
from repro.heuristics.base import get_heuristic
from repro.platform.generator import generate_platform
from repro.util.rng import spawn_rngs

from benchmarks.conftest import banner, full_scale


def _run_ablation(n_settings: int, k: int, seed: int = 21) -> dict:
    # Scarce-connection regime: few connections (maxcon ~ 5), thin pipes
    # (bw = 10), sparse topology. This is where the choice of rounding
    # law is visible at all; with plentiful connections both laws reach
    # the bound because the per-step LP re-solve self-corrects.
    from repro.experiments.config import PAPER_GRID

    grid = dict(PAPER_GRID)
    grid["mean_maxcon"] = (5.0,)
    grid["mean_bw"] = (10.0,)
    grid["mean_g"] = (450.0,)
    grid["connectivity"] = (0.2, 0.3)
    grid["heterogeneity"] = (0.8,)
    settings = sample_settings(n_settings, rng=seed, k_values=[k], grid=grid)
    out = {"lprr": [], "lprr-eq": [], "eager_solves": [], "lazy_solves": []}
    for setting, rng in zip(settings, spawn_rngs(seed, len(settings))):
        platform = generate_platform(spec_for(setting), rng=rng)
        payoffs = payoffs_for(setting, DEFAULT_SCENARIO, rng)
        problem = SteadyStateProblem(platform, payoffs, objective="maxmin")
        lp = get_heuristic("lp").run(problem).value
        if lp <= 0:
            continue
        lazy = get_heuristic("lprr").run(problem, rng=rng)
        eq = get_heuristic("lprr-eq").run(problem, rng=rng)
        eager = get_heuristic("lprr").run(problem, rng=rng, eager_integer_fixing=True)
        out["lprr"].append(lazy.value / lp)
        out["lprr-eq"].append(eq.value / lp)
        out["lazy_solves"].append(lazy.n_lp_solves)
        out["eager_solves"].append(eager.n_lp_solves)
    return out


def test_rounding_law_ablation(benchmark):
    n_settings = 12 if full_scale() else 6
    k = 15 if full_scale() else 12
    data = benchmark.pedantic(
        _run_ablation, args=(n_settings, k, 5), rounds=1, iterations=1
    )

    lprr = float(np.mean(data["lprr"]))
    eq = float(np.mean(data["lprr-eq"]))
    lazy_solves = float(np.mean(data["lazy_solves"]))
    eager_solves = float(np.mean(data["eager_solves"]))

    banner(
        "E7 / Section 6.2 - rounding-probability ablation",
        "equal-probability rounding performs much worse than LPRR's "
        "fractional-part law",
    )
    print(f"mean MAXMIN ratio, LPRR (fractional-part law): {lprr:.3f}")
    print(f"mean MAXMIN ratio, equal-probability variant:  {eq:.3f}")
    print(
        f"LP solves per run: paper-faithful={lazy_solves:.0f}, "
        f"eager-integer-fixing={eager_solves:.0f} "
        f"({lazy_solves / max(eager_solves, 1):.1f}x reduction)"
    )
    # Direction matches the paper (fractional-part law >= equal-prob law);
    # the magnitude is smaller than "much worse" because our per-step
    # feasibility-clamped LP re-solve self-corrects - see EXPERIMENTS.md.
    assert lprr >= eq - 0.02
    assert eager_solves <= lazy_solves
