"""Service-layer regression gates: warm reuse, load, stream fidelity.

The service's pitch is a *resident* solver: state that PR-4 taught one
process to reuse across calls is now reused across HTTP requests. Three
gates, each a claim the README makes about ``repro.service``:

* **warm reuse** — a storm of same-platform ``POST /solve`` requests
  must hit the resident pool (and its LP template cache) on >= 95% of
  requests; the responses stay bitwise-identical to the cold reference;
* **load** — >= 1000 sweep jobs held in-flight concurrently, then all
  released, all running to ``done`` (none failed, none lost);
* **stream fidelity** — rows streamed over ``/jobs/{id}/stream`` fold
  client-side into bitwise the aggregate of the serial ``jobs=1``
  reference sweep (runtime columns excluded — wall clocks are the one
  sanctioned cross-run difference).

Everything runs through the in-process ASGI client (no sockets), so the
numbers measure the service's locks and queues, not TCP. Results land
in ``BENCH_service.json`` (repo root).
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.api import Solver, SolverConfig, build_scenario
from repro.experiments.config import Setting
from repro.experiments.persistence import row_from_dict
from repro.parallel.stream import SweepAccumulator
from repro.service import TERMINAL_STATUSES, create_app
from repro.service.testing import AsgiTestClient

from benchmarks.conftest import banner, full_scale

#: minimum fraction of storm requests served by an already-warm solver
MIN_WARM_HIT_RATE = 0.95
#: minimum sweep jobs simultaneously in flight during the load gate
MIN_CONCURRENT_JOBS = 1000

_OUT = Path(__file__).resolve().parents[1] / "BENCH_service.json"

_RESULTS: "dict[str, object]" = {}

_TINY_SETTING = {
    "K": 4, "connectivity": 0.5, "heterogeneity": 0.4,
    "mean_g": 250.0, "mean_bw": 30.0, "mean_maxcon": 10.0,
}


def _tables_sans_runtime(tables: dict) -> str:
    out = dict(tables)
    out.pop("runtime_mean_by_k")
    return json.dumps(out, sort_keys=True)


# ----------------------------------------------------------------------
# gate 1: warm-reuse hit rate on a same-fingerprint request storm
# ----------------------------------------------------------------------
def test_warm_reuse_storm():
    n_requests = 400 if full_scale() else 200
    n_threads = 16
    body = {"scenario": "das2", "seed": 0, "scenario_seed": 7,
            "config": {"method": "lprg"}}

    banner(
        "service warm reuse: same-platform solve storm",
        "resident pool serves repeat fingerprints from warm solvers",
    )

    app = create_app(max_workers=8)
    client = AsgiTestClient(app)
    try:
        reference = client.post("/solve", body).json()["report"]

        def one(i: int):
            request = dict(body, seed=i % 25)
            response = client.post("/solve", request)
            assert response.status == 200
            return response.json()["report"]

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            reports = list(pool.map(one, range(n_requests)))
        elapsed = time.perf_counter() - start

        # bitwise spot-check: every seed-0 response equals the cold one
        for report in (r for i, r in enumerate(reports) if i % 25 == 0):
            assert report["value"] == reference["value"]
            assert report["allocation"] == reference["allocation"]

        stats = client.get("/stats").json()
        pool_stats = stats["pool"]
        total = pool_stats["pool_hits"] + pool_stats["pool_misses"]
        hit_rate = pool_stats["pool_hits"] / total
        totals = pool_stats["solver_totals"]
        builds = totals["cold_builds"] + totals["build_hits"]
        build_hit_rate = totals["build_hits"] / builds if builds else 0.0

        print(f"requests:        {n_requests + 1} over {n_threads} threads "
              f"({elapsed:.2f}s, {n_requests / elapsed:.0f} req/s)")
        print(f"pool:            {pool_stats['pool_hits']} hits / "
              f"{pool_stats['pool_misses']} misses "
              f"({100 * hit_rate:.1f}% warm)")
        print(f"LP builds:       {totals['build_hits']} template hits / "
              f"{totals['cold_builds']} cold "
              f"({100 * build_hit_rate:.1f}% warm)")
        print(f"coalescer:       {stats['coalescer']['batches']} batches for "
              f"{stats['coalescer']['coalesced_requests']} requests "
              f"(largest {stats['coalescer']['largest_batch']})")

        assert hit_rate >= MIN_WARM_HIT_RATE, (
            f"pool hit rate {hit_rate:.1%} under the "
            f"{MIN_WARM_HIT_RATE:.0%} gate"
        )
        assert build_hit_rate >= MIN_WARM_HIT_RATE, (
            f"LP build hit rate {build_hit_rate:.1%} under the "
            f"{MIN_WARM_HIT_RATE:.0%} gate"
        )

        _RESULTS["warm_reuse"] = {
            "n_requests": n_requests + 1,
            "threads": n_threads,
            "seconds": elapsed,
            "requests_per_second": n_requests / elapsed,
            "pool_hit_rate": hit_rate,
            "lp_build_hit_rate": build_hit_rate,
            "pool": pool_stats,
            "coalescer": stats["coalescer"],
            "gate_min_hit_rate": MIN_WARM_HIT_RATE,
        }
    finally:
        app.service.close()


# ----------------------------------------------------------------------
# gate 2: >= 1000 sweep jobs concurrently in flight, all completing
# ----------------------------------------------------------------------
def test_thousand_concurrent_sweep_jobs():
    n_jobs = 1500 if full_scale() else MIN_CONCURRENT_JOBS
    body = {
        "settings": [_TINY_SETTING],
        "methods": ["greedy"],
        "objectives": ["maxmin"],
        "n_platforms": 1,
        "seed": 5,
        "hold": True,
    }

    banner(
        "service load: held sweep-job flood, release, drain",
        ">= 1000 jobs in flight at once; every one runs to done",
    )

    app = create_app(max_workers=8)
    client = AsgiTestClient(app)
    try:
        submit_start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=16) as pool:
            job_ids = list(
                pool.map(
                    lambda i: client.post(
                        "/sweep", dict(body, seed=i)
                    ).json()["job"]["job_id"],
                    range(n_jobs),
                )
            )
        submit_elapsed = time.perf_counter() - submit_start

        assert len(set(job_ids)) == n_jobs  # no id collisions under threads
        records = app.service.jobs.list_jobs()
        peak_in_flight = sum(
            1 for r in records if r.status not in TERMINAL_STATUSES
        )
        assert peak_in_flight >= MIN_CONCURRENT_JOBS, (
            f"only {peak_in_flight} jobs in flight; the gate needs "
            f">= {MIN_CONCURRENT_JOBS}"
        )

        release_start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=16) as pool:
            statuses = list(
                pool.map(
                    lambda job_id: client.post(
                        f"/jobs/{job_id}/start"
                    ).status,
                    job_ids,
                )
            )
        assert all(status == 200 for status in statuses)

        deadline = time.time() + 600
        while time.time() < deadline:
            records = app.service.jobs.list_jobs()
            done = sum(1 for r in records if r.status == "done")
            failed = [r for r in records if r.status in
                      ("failed", "cancelled", "interrupted")]
            assert not failed, (
                f"{len(failed)} jobs failed, first: {failed[0].error}"
            )
            if done == n_jobs:
                break
            time.sleep(0.2)
        drain_elapsed = time.perf_counter() - release_start
        assert done == n_jobs, f"only {done}/{n_jobs} jobs completed"

        # determinism spot-check: equal seeds gave identical aggregates
        first = client.get(f"/jobs/{job_ids[0]}/result").json()["result"]
        again = client.post(
            "/sweep", dict(body, seed=0, hold=False)
        ).json()["job"]["job_id"]
        while client.get(f"/jobs/{again}/status").json()["status"] != "done":
            time.sleep(0.05)
        rerun = client.get(f"/jobs/{again}/result").json()["result"]
        assert _tables_sans_runtime(first["tables"]) == _tables_sans_runtime(
            rerun["tables"]
        )

        print(f"jobs:            {n_jobs} submitted in {submit_elapsed:.2f}s "
              f"({n_jobs / submit_elapsed:.0f} jobs/s)")
        print(f"peak in flight:  {peak_in_flight}")
        print(f"drain:           all done in {drain_elapsed:.2f}s "
              f"({n_jobs / drain_elapsed:.0f} jobs/s)")

        _RESULTS["load"] = {
            "n_jobs": n_jobs,
            "peak_in_flight": peak_in_flight,
            "submit_seconds": submit_elapsed,
            "drain_seconds": drain_elapsed,
            "all_done": True,
            "gate_min_concurrent": MIN_CONCURRENT_JOBS,
        }
    finally:
        app.service.close()


# ----------------------------------------------------------------------
# gate 3: streamed rows fold bitwise into the serial reference
# ----------------------------------------------------------------------
def test_streamed_fold_matches_serial_reference():
    settings = [
        dict(_TINY_SETTING, K=k) for k in ((4, 6, 8) if full_scale() else (4, 6))
    ]
    methods = ["greedy", "lprg"]
    objectives = ["maxmin"]
    n_platforms = 2
    seed = 42

    banner(
        "service stream fidelity: client-side fold == serial fold",
        "SSE rows arrive complete, ordered, and fold bitwise",
    )

    app = create_app(max_workers=4)
    client = AsgiTestClient(app)
    try:
        job = client.post(
            "/sweep",
            {"settings": settings, "methods": methods,
             "objectives": objectives, "n_platforms": n_platforms,
             "seed": seed, "hold": True},
        ).json()["job"]
        handle = client.stream(f"/jobs/{job['job_id']}/stream")
        events = handle.iter_events(timeout=300)
        assert next(events)[0] == "status"  # subscription confirmed
        assert client.post(f"/jobs/{job['job_id']}/start").status == 200

        streamed: "list[dict]" = []
        for name, data in events:
            if name == "rows":
                streamed.extend(data["rows"])
            elif name in ("done", "failed"):
                assert name == "done", data
                break

        reference_rows = Solver(SolverConfig(method="greedy")).sweep(
            [
                Setting(
                    k=int(s["K"]), connectivity=s["connectivity"],
                    heterogeneity=s["heterogeneity"], mean_g=s["mean_g"],
                    mean_bw=s["mean_bw"], mean_maxcon=s["mean_maxcon"],
                )
                for s in settings
            ],
            scenario="calibrated",
            methods=methods,
            objectives=objectives,
            n_platforms=n_platforms,
            rng=seed,
        )
        assert len(streamed) == len(reference_rows)

        folded = SweepAccumulator.from_rows(
            [row_from_dict(r) for r in streamed],
            methods=methods, objectives=objectives,
        )
        reference = SweepAccumulator.from_rows(
            reference_rows, methods=methods, objectives=objectives
        )
        client_fold = _tables_sans_runtime(folded.tables())
        serial_fold = _tables_sans_runtime(reference.tables())
        assert client_fold == serial_fold, (
            "client-side fold of streamed rows diverged from the serial "
            "jobs=1 reference fold"
        )
        server_tables = client.get(
            f"/jobs/{job['job_id']}/result"
        ).json()["result"]["tables"]
        assert _tables_sans_runtime(server_tables) == serial_fold

        print(f"rows streamed:   {len(streamed)} "
              f"({len(settings)}x{n_platforms} tasks)")
        print("bitwise folds:   client == server == serial reference")

        _RESULTS["stream_fidelity"] = {
            "rows_streamed": len(streamed),
            "n_tasks": len(settings) * n_platforms,
            "bitwise_identical": True,
        }
    finally:
        app.service.close()

    _RESULTS["full_scale"] = full_scale()
    _OUT.write_text(json.dumps(_RESULTS, indent=2) + "\n")
    print(f"\nwrote {_OUT.name}")
