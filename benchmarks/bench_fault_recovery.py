"""E-fault — supervised fault-recovery gate (repro.distrib.supervise).

The robustness gate of the supervision subsystem: one calibrated sweep
is run under three adversarial fault schedules — a transient task-error
storm healed by in-engine retry, a shard kill with a torn checkpoint
tail healed by shard-level retry + resume, and an injected straggler
healed by mid-campaign work stealing — and every recovered aggregate
must match the fault-free serial fold **bitwise** (modulo the runtime
table, the one sanctioned wall-clock difference between executions).
Recovery must also be *bounded*: the retry/steal counts are asserted
exactly, and the wall-clock overhead factor versus the fault-free
supervised run is recorded and loosely capped (recovery may redo a
shard, never the campaign).

Results land in ``BENCH_fault_recovery.json`` (repo root); the sweep
grows under ``REPRO_FULL=1``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.distrib import (
    InlineShardExecutor,
    ProcessShardExecutor,
    ShardSupervisor,
    SupervisionOptions,
    build_shard_manifests,
    load_manifests,
    merge_shards,
    write_manifests,
)
from repro.experiments import run_sweep, sample_settings
from repro.experiments.config import DEFAULT_SCENARIO
from repro.parallel.engine import RetryPolicy
from repro.parallel.stream import SweepAccumulator
from repro.util.faults import FAULT_PLAN_ENV, FaultPlan, FaultRule
from repro.util.rng import seed_sequence_of

from benchmarks.conftest import banner, full_scale

_OUT = Path(__file__).resolve().parents[1] / "BENCH_fault_recovery.json"

SEED = 4321
MAX_OVERHEAD = 30.0  # loose wall-clock cap: a shard may rerun, not the world


def _sweep_def():
    n_settings = 8 if full_scale() else 4
    return dict(
        settings=sample_settings(n_settings, rng=SEED, k_values=[3, 4]),
        scenario=DEFAULT_SCENARIO,
        methods=("greedy", "lprg"),
        objectives=("maxmin", "sum"),
        n_platforms=3 if full_scale() else 2,
    )


def _tables_sans_runtime(agg: SweepAccumulator) -> str:
    tables = agg.tables()
    tables.pop("runtime_mean_by_k")
    return json.dumps(tables, sort_keys=True)


def _supervised_run(sweep, shard_dir, executor, options):
    manifests = build_shard_manifests(
        sweep["settings"], sweep["scenario"], sweep["methods"],
        sweep["objectives"], sweep["n_platforms"], seed_sequence_of(SEED),
        n_shards=2, shard_dir=shard_dir,
    )
    write_manifests(manifests, shard_dir)
    supervisor = ShardSupervisor(executor, options=options)
    t0 = time.perf_counter()
    report = supervisor.run([m.manifest_path for m in manifests])
    seconds = time.perf_counter() - t0
    merged = merge_shards(load_manifests(shard_dir))
    return merged, report, seconds


def test_fault_recovery_is_bitwise_and_bounded(tmp_path, monkeypatch):
    sweep = _sweep_def()
    n_tasks = len(sweep["settings"]) * sweep["n_platforms"]
    fast = RetryPolicy(max_attempts=3, backoff=0.0)

    t0 = time.perf_counter()
    serial_rows = run_sweep(
        sweep["settings"],
        scenario=sweep["scenario"],
        methods=sweep["methods"],
        objectives=sweep["objectives"],
        n_platforms=sweep["n_platforms"],
        rng=SEED,
        jobs=1,
    )
    serial_seconds = time.perf_counter() - t0
    reference = SweepAccumulator.from_rows(
        serial_rows, methods=sweep["methods"], objectives=sweep["objectives"]
    )
    reference_blob = _tables_sans_runtime(reference)

    banner(
        f"E-fault - supervised recovery on {n_tasks} tasks "
        f"({reference.n_rows} rows)",
        "injected faults (transient storms, shard kills + torn tails, "
        "stragglers) cost wall-clock only: recovered aggregates are "
        "bitwise-identical to the fault-free serial fold",
    )
    print(f"serial jobs=1 reference: {serial_seconds:6.2f}s")

    # fault-free supervised baseline: the overhead denominator
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    _, _, clean_seconds = _supervised_run(
        sweep, tmp_path / "clean", ProcessShardExecutor(jobs=2),
        SupervisionOptions(retry=fast),
    )
    print(f"fault-free supervised (process x2): {clean_seconds:6.2f}s")

    scenarios = []

    def _run_scenario(name, plan, shard_dir, executor, options):
        monkeypatch.setenv(
            FAULT_PLAN_ENV, str(plan.save(shard_dir / "plan.json"))
        )
        merged, report, seconds = _supervised_run(
            sweep, shard_dir, executor, options
        )
        monkeypatch.delenv(FAULT_PLAN_ENV)
        identical = _tables_sans_runtime(merged) == reference_blob
        overhead = seconds / max(clean_seconds, 1e-9)
        entry = {
            "scenario": name,
            "seconds": round(seconds, 3),
            "overhead_factor": round(overhead, 2),
            "shard_retries": report.shard_retries,
            "steals": len(report.steals),
            "identical": identical,
        }
        scenarios.append(entry)
        print(
            f"  {name:<24} {seconds:6.2f}s  x{overhead:5.2f}  "
            f"retries={report.shard_retries} steals={len(report.steals)}  "
            f"{'bitwise-identical' if identical else 'DIVERGED'}"
        )
        assert identical, f"{name}: recovered aggregate diverged"
        return entry

    # 1. transient task-error storm: every task id has a 50% chance of
    # failing twice; in-engine retry (max_attempts=3) must heal all of
    # it with zero shard-level retries.
    for dir_name in ("storm",):
        entry = _run_scenario(
            "task-error-storm",
            FaultPlan(seed=SEED, rules=(
                FaultRule(scope="task", fault="error", p=0.5, times=2),
            )),
            (tmp_path / dir_name), InlineShardExecutor(retry=fast),
            SupervisionOptions(retry=fast),
        )
        assert entry["shard_retries"] == 0, "storm leaked into shard retries"
        assert entry["steals"] == 0

    # 2. shard kill with a torn checkpoint tail: exactly one shard-level
    # retry, resume replays the durable prefix and recomputes the rest.
    entry = _run_scenario(
        "shard-kill-torn-tail",
        FaultPlan(seed=SEED, rules=(
            FaultRule(scope="shard", fault="kill", match=0, after_tasks=1,
                      corrupt_tail=True, times=1),
        )),
        (tmp_path / "kill"), ProcessShardExecutor(jobs=2),
        SupervisionOptions(retry=fast),
    )
    assert entry["shard_retries"] == 1, "kill must cost exactly one retry"

    # 3. injected straggler: shard 1 stalls 60s after its first task;
    # the supervisor must steal its remainder instead of waiting it out.
    entry = _run_scenario(
        "straggler-steal",
        FaultPlan(seed=SEED, rules=(
            FaultRule(scope="shard", fault="stall", match=1, after_tasks=1,
                      seconds=60.0, times=1),
        )),
        (tmp_path / "straggler"), ProcessShardExecutor(jobs=2),
        SupervisionOptions(retry=fast, straggler_after=1.0,
                           min_steal_tasks=1, poll_interval=0.05),
    )
    assert entry["steals"] == 1, "straggler must be stolen, not waited out"

    worst = max(s["overhead_factor"] for s in scenarios)
    assert worst < MAX_OVERHEAD, (
        f"recovery overhead x{worst} exceeds the x{MAX_OVERHEAD} cap — "
        f"recovery is redoing far more than one shard's work"
    )

    payload = {
        "benchmark": "fault_recovery",
        "full_scale": full_scale(),
        "n_settings": len(sweep["settings"]),
        "n_platforms": sweep["n_platforms"],
        "n_tasks": n_tasks,
        "n_rows": reference.n_rows,
        "serial_seconds": round(serial_seconds, 3),
        "clean_supervised_seconds": round(clean_seconds, 3),
        "scenarios": scenarios,
        "worst_overhead_factor": worst,
        "all_identical": True,
    }
    _OUT.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    print(f"  wrote {_OUT.name}")
