"""Online re-scheduling subsystem: incremental re-solve vs from-scratch.

PR 9 keeps a solved steady-state program *current* while the platform
drifts: every :class:`~repro.dynamic.events.PlatformEvent` is classified
(RHS-only / bound-only / structural), applied in place to a live
:class:`~repro.lp.session.LPSession`, and re-solved from the carried
basis — with a from-scratch oracle re-solving the identical mutated
instance cold after every event. This benchmark is the regression gate
for that subsystem:

* the incremental answer must be **bitwise-identical** to the oracle's
  at every event, across **every registered event-trace family** (the
  gate enumerates the scenario registry, so a newly registered family
  is gated automatically);
* on the drift family — the RHS fast path's home turf — the warm path
  must spend at least **40% fewer simplex iterations** than the
  from-scratch oracle;
* replaying the same scenario/trace pair from a fresh solver must
  reproduce the identical report ``state_dict`` (the saved-trace
  replay contract).

Results land in ``BENCH_online.json`` (repo root) so the perf
trajectory is machine-trackable from this PR on.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import DynamicOptions, Solver, SolverConfig, scenario_registry

from benchmarks.conftest import banner, full_scale

#: minimum drift-family iteration reduction the warm path must deliver
MIN_DRIFT_REDUCTION = 0.40
DRIFT_FAMILY = "drift-heavy"
SCENARIO = "table1-small"

_OUT = Path(__file__).resolve().parents[1] / "BENCH_online.json"


def _run(family: str, seed: int):
    config = SolverConfig(dynamic=DynamicOptions(replay=False))
    return Solver(config).run_online(SCENARIO, family, rng=seed)


def _sweep(families, seeds) -> dict:
    out = {"scenario": SCENARIO, "seeds": list(seeds), "families": {}}
    for family in families:
        row = {
            "warm_iterations": 0,
            "oracle_iterations": 0,
            "n_events": 0,
            "oracle_match_runs": 0,
            "runs": 0,
            "by_classification": {},
            "mean_reoptimize_seconds": 0.0,
            "replay_exact": True,
        }
        for seed in seeds:
            report = _run(family, seed)
            summary = report.summary()
            assert summary["all_oracle_match"] is True, (
                f"bitwise oracle mismatch: family={family} seed={seed}"
            )
            row["runs"] += 1
            row["oracle_match_runs"] += 1
            row["warm_iterations"] += summary["warm_iterations"]
            row["oracle_iterations"] += summary["oracle_iterations"]
            row["n_events"] += summary["n_events"]
            row["mean_reoptimize_seconds"] += summary["mean_reoptimize_seconds"]
            for cls, count in summary["by_classification"].items():
                row["by_classification"][cls] = (
                    row["by_classification"].get(cls, 0) + count
                )
        # The replay contract: a fresh solver on the same names + rng
        # reproduces the identical fingerprint.
        row["replay_exact"] = (
            _run(family, seeds[0]).state_dict()
            == _run(family, seeds[0]).state_dict()
        )
        row["mean_reoptimize_seconds"] /= max(1, row["runs"])
        row["iteration_reduction"] = 1.0 - (
            row["warm_iterations"] / row["oracle_iterations"]
        )
        out["families"][family] = row
    return out


def test_online_regression(benchmark):
    families = scenario_registry().names("events")
    assert DRIFT_FAMILY in families
    seeds = list(range(6)) if full_scale() else list(range(3))
    data = benchmark.pedantic(
        _sweep, args=(families, seeds), rounds=1, iterations=1
    )

    banner(
        "PR 9 / online re-scheduling: incremental LP re-solve vs oracle",
        "Every event mutates the live session in place; the carried basis "
        "must cut simplex work while staying bitwise-equal to a cold solve.",
    )
    print(f"{'family':>14} {'events':>7} {'iters cold':>11} "
          f"{'iters warm':>11} {'saved':>7} {'ms/event':>9} {'bitwise':>8}")
    for family, row in data["families"].items():
        print(f"{family:>14} {row['n_events']:>7} "
              f"{row['oracle_iterations']:>11} {row['warm_iterations']:>11} "
              f"{row['iteration_reduction']:>6.0%} "
              f"{1e3 * row['mean_reoptimize_seconds']:>9.2f} "
              f"{row['oracle_match_runs']}/{row['runs']:>4}")
    drift = data["families"][DRIFT_FAMILY]
    print(f"drift-family iteration reduction "
          f"{drift['iteration_reduction']:.0%} "
          f"(gate: >={MIN_DRIFT_REDUCTION:.0%})")

    payload = {
        "bench": "online",
        "full_scale": full_scale(),
        "min_drift_reduction_gate": MIN_DRIFT_REDUCTION,
        "results": data,
    }
    _OUT.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    print(f"wrote {_OUT.name}")

    # Regression gates.
    for family, row in data["families"].items():
        assert row["oracle_match_runs"] == row["runs"]
        assert row["replay_exact"] is True, f"replay drifted: {family}"
        assert row["warm_iterations"] <= row["oracle_iterations"], family
    assert drift["iteration_reduction"] >= MIN_DRIFT_REDUCTION, (
        f"drift reduction {drift['iteration_reduction']:.1%} below gate"
    )
