"""E15 — extension: iterated LPRG, the gap between LPRG and LPRR.

Figure 7 leaves a three-orders-of-magnitude cost gap between LPRG (one
LP solve) and LPRR (~K^2 solves). Iterated LPRG re-solves the LP on the
residual platform between round-down passes (a handful of solves) —
measuring where the quality/cost frontier lies in between.
"""

import numpy as np

from repro.core.problem import SteadyStateProblem
from repro.experiments import sample_settings, spec_for
from repro.experiments.config import DEFAULT_SCENARIO, payoffs_for
from repro.heuristics.base import get_heuristic
from repro.platform.generator import generate_platform
from repro.util.rng import spawn_rngs

from benchmarks.conftest import banner, full_scale


def _compare(n_settings: int, k: int, seed: int = 47):
    settings = sample_settings(n_settings, rng=seed, k_values=[k])
    stats = {m: {"ratio": [], "solves": [], "time": []} for m in
             ("lprg", "lprg-it", "lprr")}
    for setting, rng in zip(settings, spawn_rngs(seed, len(settings))):
        platform = generate_platform(spec_for(setting), rng=rng)
        payoffs = payoffs_for(setting, DEFAULT_SCENARIO, rng)
        problem = SteadyStateProblem(platform, payoffs, objective="maxmin")
        lp = get_heuristic("lp").run(problem).value
        if lp <= 0:
            continue
        for method in stats:
            result = get_heuristic(method).run(problem, rng=rng)
            stats[method]["ratio"].append(result.value / lp)
            stats[method]["solves"].append(result.n_lp_solves)
            stats[method]["time"].append(result.runtime)
    return stats


def test_iterated_rounding(benchmark):
    n_settings = 8 if full_scale() else 4
    k = 15 if full_scale() else 10
    stats = benchmark.pedantic(_compare, args=(n_settings, k), rounds=1, iterations=1)

    banner(
        "E15 / extension - iterated LPRG between LPRG and LPRR",
        "Figure 7 gap: 1 LP solve (LPRG) vs ~K^2 solves (LPRR); what does "
        "a handful of residual re-solves buy?",
    )
    print(f"{'method':<9} {'MAXMIN/LP':>10} {'LP solves':>10} {'time (s)':>10}")
    for method, s in stats.items():
        print(
            f"{method:<9} {np.mean(s['ratio']):>10.3f} "
            f"{np.mean(s['solves']):>10.1f} {np.mean(s['time']):>10.4f}"
        )
    # Cost ordering must hold; quality stays in-band.
    assert np.mean(stats["lprg"]["solves"]) <= np.mean(stats["lprg-it"]["solves"])
    assert np.mean(stats["lprg-it"]["solves"]) < np.mean(stats["lprr"]["solves"])
    for method in stats:
        assert np.mean(stats[method]["ratio"]) <= 1.0 + 1e-9
        assert np.mean(stats[method]["ratio"]) > 0.5
