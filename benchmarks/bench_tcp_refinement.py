"""E12 — Section 7 refinement: RTT-aware TCP bandwidth model.

The paper's future work: "we will strive to use an even more realistic
network model, which would include link latencies, TCP bandwidth sharing
behaviors according to round-trip times". This benchmark implements that
refinement and measures its effect: per-connection bandwidth becomes
min(window/RTT, bottleneck bw), so multi-hop (high-latency) routes carry
less per connection, the LP bound tightens, and the value of opening
*parallel* connections (the beta machinery the model is built around)
increases on long paths.
"""

import numpy as np

from repro.core.problem import SteadyStateProblem
from repro.experiments import sample_settings, spec_for
from repro.experiments.config import DEFAULT_SCENARIO, payoffs_for
from repro.heuristics.base import get_heuristic
from repro.platform.generator import generate_platform
from repro.platform.tcp import TcpModel, apply_tcp_model
from repro.util.rng import spawn_rngs

from benchmarks.conftest import banner, full_scale


def _compare(n_settings: int, k: int, seed: int = 23):
    settings = sample_settings(n_settings, rng=seed, k_values=[k])
    rows = []
    for setting, rng in zip(settings, spawn_rngs(seed, len(settings))):
        base = generate_platform(spec_for(setting), rng=rng)
        payoffs = payoffs_for(setting, DEFAULT_SCENARIO, rng)
        # Latency proportional to nothing platform-specific: a flat 1.0
        # per hop; window sized so ~2-hop routes become window-limited.
        refined = apply_tcp_model(
            base, TcpModel(window=2.0 * setting.mean_bw, default_latency=1.0)
        )
        record = {}
        for label, platform in (("paper", base), ("rtt", refined)):
            problem = SteadyStateProblem(platform, payoffs, objective="maxmin")
            lp = get_heuristic("lp").run(problem).value
            lprg = get_heuristic("lprg").run(problem)
            record[label] = {
                "lp": lp,
                "lprg": lprg.value,
                "connections": lprg.allocation.total_connections(),
            }
        rows.append(record)
    return rows


def test_tcp_refinement(benchmark):
    n_settings = 8 if full_scale() else 4
    k = 15 if full_scale() else 10
    rows = benchmark.pedantic(_compare, args=(n_settings, k), rounds=1, iterations=1)

    banner(
        "E12 / Section 7 - RTT-aware TCP bandwidth refinement",
        "future work in the paper: latencies + TCP throughput ~ window/RTT",
    )
    lp_drop = [r["rtt"]["lp"] / r["paper"]["lp"] for r in rows if r["paper"]["lp"] > 0]
    conn_paper = float(np.mean([r["paper"]["connections"] for r in rows]))
    conn_rtt = float(np.mean([r["rtt"]["connections"] for r in rows]))
    print(f"LP bound under RTT model / paper model: {np.mean(lp_drop):.3f} (mean)")
    print(f"connections opened by LPRG: paper-model={conn_paper:.1f}, rtt-model={conn_rtt:.1f}")
    for i, r in enumerate(rows):
        print(
            f"  platform {i}: LP {r['paper']['lp']:.1f} -> {r['rtt']['lp']:.1f}, "
            f"LPRG {r['paper']['lprg']:.1f} -> {r['rtt']['lprg']:.1f}"
        )
    # Latency can only remove capacity, never add it.
    assert all(ratio <= 1.0 + 1e-9 for ratio in lp_drop)
    # The refined platform is still schedulable with valid allocations.
    assert all(r["rtt"]["lprg"] <= r["rtt"]["lp"] + 1e-6 for r in rows)
