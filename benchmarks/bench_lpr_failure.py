"""E6 — Section 6.1: LPR's round-down failure mode.

Paper: "LPR exhibits very poor performance when compared to both G and
LPRG. Typically LPR does not utilize a significant portion of the
network capacity, and in some cases all beta values are rounded down to
0, leading to an objective value of 0."
"""

import numpy as np

from repro.experiments import lpr_failure_stats, run_sweep, sample_settings
from repro.experiments.aggregate import mean_ratio_by_k, pairwise_value_ratio

from benchmarks.conftest import banner, full_scale


def test_lpr_failure_mode(benchmark):
    n_settings = 24 if full_scale() else 8

    def run():
        # Low-bandwidth / low-connection settings provoke fractional
        # betas, which is where round-down hurts most; keep the sample
        # honest by mixing in the full grid too.
        settings = sample_settings(n_settings, rng=3, k_values=[5, 15, 25])
        return run_sweep(
            settings,
            methods=("greedy", "lpr", "lprg"),
            objectives=("maxmin",),
            n_platforms=2,
            rng=3,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    stats = lpr_failure_stats(rows)
    lpr_vs_lprg = pairwise_value_ratio(rows, "lpr", "lprg", "maxmin")

    banner(
        "E6 / Section 6.1 - LPR round-down failure mode",
        "LPR very poor vs G and LPRG; sometimes every beta rounds to 0",
    )
    print(f"mean LPR/LP ratio (MAXMIN):      {stats['mean_ratio']:.3f}")
    print(f"fraction of zero-value outcomes: {stats['zero_fraction']:.3f}")
    print(f"mean LPR/LPRG value ratio:       {lpr_vs_lprg:.3f}")
    for k, v in mean_ratio_by_k(rows, "lpr", "maxmin"):
        print(f"  K={k:>3}: LPR/LP = {v:.3f}")

    # Shape: LPR clearly below LPRG on average.
    assert lpr_vs_lprg < 0.95
    # LPR loses a visible chunk of the bound.
    assert stats["mean_ratio"] < 0.9
