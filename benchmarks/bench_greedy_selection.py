"""E14 — ablation: the greedy selection rule (DESIGN.md note 1).

Section 5.1 of the paper says in prose "select the application that has
received the smallest relative share [...] the one for which
alpha_k * pi_k is minimum", but its step-3 formula reads "sort L by
non-decreasing values of (1/(alpha_k pi_k), pi_k)" — which, taken
verbatim, re-selects the *best-served* application after the first
allocation (1/x sorts the largest alpha*pi first). The two readings
cannot both be right; this benchmark measures both and shows the prose
reading is the sensible one, especially under MAXMIN, justifying our
implementation choice.
"""

import numpy as np

from repro.core.problem import SteadyStateProblem
from repro.experiments import sample_settings, spec_for
from repro.experiments.config import DEFAULT_SCENARIO, payoffs_for
from repro.heuristics.base import get_heuristic
from repro.heuristics.greedy import greedy_allocate
from repro.platform.generator import generate_platform
from repro.util.rng import spawn_rngs

from benchmarks.conftest import banner, full_scale


def _compare(n_settings: int, k: int, seed: int = 41):
    settings = sample_settings(n_settings, rng=seed, k_values=[k])
    ratios = {"intuition": {"maxmin": [], "sum": []},
              "literal": {"maxmin": [], "sum": []}}
    for setting, rng in zip(settings, spawn_rngs(seed, len(settings))):
        platform = generate_platform(spec_for(setting), rng=rng)
        payoffs = payoffs_for(setting, DEFAULT_SCENARIO, rng)
        problem = SteadyStateProblem(platform, payoffs, objective="maxmin")
        lp = {
            "maxmin": get_heuristic("lp").run(problem).value,
            "sum": get_heuristic("lp").run(problem.with_objective("sum")).value,
        }
        for rule in ("intuition", "literal"):
            alloc = greedy_allocate(problem, selection=rule)
            for objective in ("maxmin", "sum"):
                if lp[objective] > 0:
                    value = alloc.objective_value(objective, payoffs)
                    ratios[rule][objective].append(value / lp[objective])
    return ratios


def test_greedy_selection_rule(benchmark):
    n_settings = 10 if full_scale() else 5
    k = 15 if full_scale() else 10
    ratios = benchmark.pedantic(_compare, args=(n_settings, k), rounds=1, iterations=1)

    banner(
        "E14 / ablation - greedy step-3 selection rule (DESIGN.md note 1)",
        "the paper's prose ('select min alpha*pi') vs its printed formula "
        "('non-decreasing (1/(alpha*pi), pi)') disagree; prose wins",
    )
    means = {
        rule: {obj: float(np.mean(v)) for obj, v in per_obj.items()}
        for rule, per_obj in ratios.items()
    }
    for rule in ("intuition", "literal"):
        print(
            f"{rule:<10} MAXMIN(G)/LP = {means[rule]['maxmin']:.3f}   "
            f"SUM(G)/LP = {means[rule]['sum']:.3f}"
        )
    # The literal reading starves applications: much worse MAXMIN.
    assert means["intuition"]["maxmin"] > means["literal"]["maxmin"]
    assert means["intuition"]["maxmin"] > 0.5
