"""Warm-started LP re-solve subsystem: cold vs warm on the K^2 hot path.

The paper's Figure 7 prices LPRR at ~K(K-1) LP solves; PR 2 makes every
one of those solves share a session (in-place mutation + presolve +
optimal-basis carry, :mod:`repro.lp.session`). This benchmark is the
regression gate for that subsystem:

* warm LPRR must produce **bitwise-identical allocations** to the cold
  reference path on the whole sweep (same seeds -> same roundings ->
  the shared cold final solve yields the same bytes) — including K >= 8,
  where the revised engine's canonical-vertex rule keeps degenerate
  optima deterministic;
* warm LPRR must spend **strictly fewer simplex iterations** than cold,
  and at least 30% fewer over the sweep;
* the warm session path must beat the cold-HiGHS-per-solve reference
  (``lp_backend="scipy"``) in wall-clock **at every K** — the revised
  engine retired the dense-tableau size cliff, so there is no longer a
  K past which the session loses;
* iterated LPRG (incremental ``b_ub`` rewrite instead of platform
  snapshot + full rebuild) re-solves cold each round — a residual
  rewrite moves the optimum wholesale, so basis carry does not pay
  there — and must stay within the cold path's quality band without
  spending more iterations than it.

Results land in ``BENCH_warmstart.json`` (repo root) so the perf
trajectory is machine-trackable from this PR on.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro import PlatformSpec, SteadyStateProblem, generate_platform
from repro.heuristics.base import get_heuristic

from benchmarks.conftest import banner, full_scale

#: minimum sweep-wide iteration reduction the warm path must deliver
MIN_REDUCTION = 0.30

_OUT = Path(__file__).resolve().parents[1] / "BENCH_warmstart.json"


def _reference_problem(seed: int, k: int) -> SteadyStateProblem:
    """The reference platform family (same knobs as the test fixtures)."""
    spec = PlatformSpec(
        n_clusters=k,
        connectivity=0.5,
        heterogeneity=0.5,
        mean_g=200.0,
        mean_bw=30.0,
        mean_max_connect=10.0,
        speed_heterogeneity=0.5,
    )
    platform = generate_platform(spec, rng=seed)
    payoffs = np.random.default_rng(seed + 999).uniform(0.8, 1.2, k)
    return SteadyStateProblem(platform, payoffs, objective="maxmin")


def _sweep(k_values, seeds) -> dict:
    lprr = get_heuristic("lprr")
    lprg_it = get_heuristic("lprg-it")
    out = {
        "k_values": list(k_values),
        "seeds": list(seeds),
        "lprr": {"per_k": {}, "identical": 0, "runs": 0},
        "lprg_it": {"per_k": {}},
    }

    for k in k_values:
        row = {
            "iters_warm": 0, "iters_cold": 0,
            "time_warm": 0.0, "time_cold": 0.0, "time_scipy": 0.0,
            "warm_solves": 0, "solves": 0,
        }
        it_row = {"iters_warm": 0, "iters_cold": 0,
                  "time_warm": 0.0, "time_cold": 0.0, "max_rel_diff": 0.0}
        for seed in seeds:
            problem = _reference_problem(seed, k)
            warm = lprr.run(problem, rng=seed, warm_start=True,
                            lp_backend="session")
            cold = lprr.run(problem, rng=seed, warm_start=False,
                            lp_backend="session")
            same = np.array_equal(
                warm.allocation.alpha, cold.allocation.alpha
            ) and np.array_equal(warm.allocation.beta, cold.allocation.beta)
            out["lprr"]["runs"] += 1
            out["lprr"]["identical"] += int(same)
            # The revised engine canonicalizes every optimal vertex
            # (secondary objective over the optimal face), so warm and
            # cold take identical intermediate vertices at every K on
            # this pinned sweep — including K >= 8, which broke the old
            # tableau path. A failure here means a code change moved a
            # vertex: inspect it before touching the pins.
            assert same, (
                f"warm/cold LPRR allocations diverged at K={k} seed={seed}"
            )
            scipy_ref = lprr.run(problem, rng=seed, lp_backend="scipy")
            row["time_scipy"] += scipy_ref.runtime
            ws, cs = warm.meta["lp_stats"], cold.meta["lp_stats"]
            row["iters_warm"] += ws["iterations"]
            row["iters_cold"] += cs["iterations"]
            row["time_warm"] += warm.runtime
            row["time_cold"] += cold.runtime
            row["warm_solves"] += ws["n_warm"]
            row["solves"] += ws["n_solves"]

            w_it = lprg_it.run(problem, warm_start=True, lp_backend="session")
            c_it = lprg_it.run(problem, warm_start=False, lp_backend="session")
            assert problem.check(w_it.allocation).ok
            wis, cis = w_it.meta["lp_stats"], c_it.meta["lp_stats"]
            it_row["iters_warm"] += wis["iterations"]
            it_row["iters_cold"] += cis["iterations"]
            it_row["time_warm"] += w_it.runtime
            it_row["time_cold"] += c_it.runtime
            if c_it.value > 0:
                it_row["max_rel_diff"] = max(
                    it_row["max_rel_diff"],
                    abs(w_it.value - c_it.value) / c_it.value,
                )
        out["lprr"]["per_k"][k] = row
        out["lprg_it"]["per_k"][k] = it_row

    for series in (out["lprr"], out["lprg_it"]):
        per_k = series["per_k"]
        series["iters_warm"] = sum(r["iters_warm"] for r in per_k.values())
        series["iters_cold"] = sum(r["iters_cold"] for r in per_k.values())
        series["time_warm"] = sum(r["time_warm"] for r in per_k.values())
        series["time_cold"] = sum(r["time_cold"] for r in per_k.values())
        series["iteration_reduction"] = 1.0 - (
            series["iters_warm"] / series["iters_cold"]
        )
    return out


def test_warmstart_regression(benchmark):
    k_values = (4, 5, 6, 7, 8, 10)
    seeds = range(8) if full_scale() else range(4)
    data = benchmark.pedantic(
        _sweep, args=(k_values, seeds), rounds=1, iterations=1
    )

    banner(
        "PR 2 / warm-started LP re-solves (LPSession) on the K^2 hot path",
        "Figure 7 costs LPRR ~K(K-1) LP solves; basis reuse + presolve must "
        "cut the simplex work without changing a single output byte.",
    )
    print(f"{'K':>3} {'iters cold':>11} {'iters warm':>11} {'saved':>7} "
          f"{'t cold (s)':>11} {'t warm (s)':>11} {'t scipy (s)':>12}")
    for k, row in data["lprr"]["per_k"].items():
        saved = 1 - row["iters_warm"] / row["iters_cold"]
        print(f"{k:>3} {row['iters_cold']:>11} {row['iters_warm']:>11} "
              f"{saved:>6.0%} {row['time_cold']:>11.3f} {row['time_warm']:>11.3f} "
              f"{row['time_scipy']:>12.3f}")
    red = data["lprr"]["iteration_reduction"]
    it_red = data["lprg_it"]["iteration_reduction"]
    print(f"LPRR: allocations bitwise-identical on "
          f"{data['lprr']['identical']}/{data['lprr']['runs']} runs; "
          f"iteration reduction {red:.0%} (gate: >={MIN_REDUCTION:.0%})")
    print(f"LPRG-it: iteration reduction {it_red:.0%}, "
          f"max value drift {data['lprg_it']['per_k'][k_values[0]]['max_rel_diff']:.2%}")

    payload = {
        "bench": "warmstart",
        "full_scale": full_scale(),
        "min_reduction_gate": MIN_REDUCTION,
        "results": data,
    }
    _OUT.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    print(f"wrote {_OUT.name}")

    # Regression gates.
    assert data["lprr"]["identical"] == data["lprr"]["runs"]
    assert data["lprr"]["iters_warm"] < data["lprr"]["iters_cold"]
    assert red >= MIN_REDUCTION, f"iteration reduction {red:.1%} below gate"
    assert data["lprg_it"]["iters_warm"] <= data["lprg_it"]["iters_cold"]
    # The session must beat cold HiGHS at every K — no size cliff left.
    for k, row in data["lprr"]["per_k"].items():
        assert row["time_warm"] < row["time_scipy"], (
            f"warm session slower than cold HiGHS at K={k}: "
            f"{row['time_warm']:.3f}s vs {row['time_scipy']:.3f}s"
        )
