"""Shared helpers for the benchmark suite.

Every benchmark regenerates one paper artifact (table/figure/claim) and
prints the measured series next to the paper's reported values, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction
report. Scale is laptop-friendly by default; set ``REPRO_FULL=1`` for
larger sweeps closer to the paper's.
"""

from __future__ import annotations

import os

import pytest


def full_scale() -> bool:
    """True when REPRO_FULL=1 requests paper-scale sweeps."""
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false")


def sweep_jobs() -> int:
    """Worker processes for engine-backed sweeps (REPRO_JOBS, default 1).

    Sweep results are bitwise-identical for any value (stateless
    per-task seeds), so raising this only changes benchmark wall-clock,
    never an assertion.
    """
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


@pytest.fixture
def scale():
    """dict of scale knobs shared by the experiment benchmarks."""
    if full_scale():
        return {
            "fig5_k": (5, 15, 25, 35, 45, 55),
            "fig5_settings_per_k": 6,
            "fig5_platforms": 5,
            "fig6_k": (15, 20, 25),
            "fig6_settings_per_k": 5,
            "fig6_platforms": 6,
            "fig7_k": (10, 20, 30, 40),
            "headline_settings": 40,
            "headline_platforms": 4,
            "exact_k": (4, 6, 8, 10),
            "reduction_n": 9,
        }
    return {
        "fig5_k": (5, 15, 25),
        "fig5_settings_per_k": 2,
        "fig5_platforms": 2,
        "fig6_k": (10, 15),
        "fig6_settings_per_k": 1,
        "fig6_platforms": 2,
        "fig7_k": (8, 12, 16, 20),
        "headline_settings": 10,
        "headline_platforms": 2,
        "exact_k": (4, 5, 6),
        "reduction_n": 7,
    }


def banner(title: str, paper_claim: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print(f"paper: {paper_claim}")
    print("=" * 72)
