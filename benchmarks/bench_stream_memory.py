"""E-stream — bounded-memory streaming aggregation on a 100k-row sweep.

The gate of the streaming subsystem (:mod:`repro.parallel.stream`): a
campaign of >= 100k rows is aggregated twice —

* **materialised** (the historical path): every row collected in a
  list, then reduced;
* **streamed**: each task folded into the constant-size accumulators on
  completion, rows discarded (``NullRowSink``);

and two claims are enforced:

* **identical aggregates** — the streamed tables are *bitwise* equal to
  the in-memory reference fold (rows here are synthetic and
  deterministic, so even the runtime table matches);
* **bounded memory** — the streamed peak (tracemalloc) is a small
  fraction of the materialised peak, and the *aggregation overhead* —
  streamed peak minus a discard-everything baseline, i.e. the
  accumulator + reorder-buffer state the subsystem adds on top of the
  engine's per-task bookkeeping — stays flat when the row count is
  scaled 8x with the setting count fixed: O(settings), never O(rows).

The campaign uses cheap deterministic synthetic rows (no LP solves) so
the benchmark measures the aggregation subsystem, not the solver; scale
rises from ~100k to ~400k rows under ``REPRO_FULL=1``. Results land in
``BENCH_stream_memory.json`` (repo root).
"""

from __future__ import annotations

import json
import tracemalloc
from pathlib import Path

from repro.experiments import sample_settings
from repro.experiments.runner import ExperimentRow
from repro.parallel import CampaignEngine, StreamFold, SweepAccumulator

from benchmarks.conftest import banner, full_scale

_OUT = Path(__file__).resolve().parents[1] / "BENCH_stream_memory.json"

#: campaign definition shared by the module-level worker (jobs=1 inline)
_CONFIG = {
    "settings": sample_settings(40, rng=99, k_values=[3, 4, 5, 6]),
    "methods": ("greedy", "lpr", "lprg"),
    "objectives": ("maxmin", "sum"),
    "n_replicates": 1,
    "seed": 4242,
}


def _mix(*parts: int) -> int:
    """Cheap deterministic integer hash (splitmix64-style) — rows must
    be a pure function of the task payload without per-task RNG cost."""
    h = _CONFIG["seed"] & 0xFFFFFFFFFFFFFFFF
    for p in parts:
        h = (h ^ (p + 0x9E3779B97F4A7C15)) & 0xFFFFFFFFFFFFFFFF
        h = (h * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        h ^= h >> 31
    return h


def _synthetic_rows(index: int) -> list:
    """Deterministic fake replicate for task ``index`` (int payload keeps
    the task list itself tiny — the measured state is the rows)."""
    cfg = _CONFIG
    setting_index, replicate = divmod(index, cfg["n_replicates"])
    setting = cfg["settings"][setting_index % len(cfg["settings"])]
    rows = []
    for oi, objective in enumerate(cfg["objectives"]):
        h = _mix(setting_index, replicate, oi)
        lp_value = (0.0, 80.0, 250.0, 250.0)[h & 3] if h % 25 else 0.0
        rows.append(
            ExperimentRow(
                setting=setting, replicate=replicate, objective=objective,
                method="lp", value=lp_value, lp_value=lp_value,
                runtime=1e-3 + (h % 997) * 1e-5,
                n_lp_solves=1,
            )
        )
        for mi, method in enumerate(cfg["methods"]):
            h = _mix(setting_index, replicate, oi, mi)
            rows.append(
                ExperimentRow(
                    setting=setting, replicate=replicate, objective=objective,
                    method=method,
                    value=(0.0, 0.5, 0.9, 0.7)[h & 3] * lp_value,
                    lp_value=lp_value,
                    runtime=1e-3 + (h % 991) * 1e-5,
                    n_lp_solves=1 + (h % 3),
                )
            )
    return rows


def _rows_per_task() -> int:
    return (1 + len(_CONFIG["methods"])) * len(_CONFIG["objectives"])


class _DiscardConsumer:
    """Engine consumer that drops every result: isolates the engine's
    own per-task bookkeeping from the aggregation subsystem's state."""

    def add(self, index, result):
        pass


def _run_baseline(n_tasks: int) -> int:
    """Peak bytes of running the campaign with no aggregation at all."""
    engine = CampaignEngine(_synthetic_rows, jobs=1)
    tracemalloc.start()
    try:
        engine.run(range(n_tasks), consumer=_DiscardConsumer())
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def _run_streamed(n_tasks: int) -> tuple:
    """(tables, peak_bytes) of the constant-memory path."""
    engine = CampaignEngine(_synthetic_rows, jobs=1)
    tracemalloc.start()
    try:
        fold = StreamFold(SweepAccumulator(), n_tasks=n_tasks)
        engine.run(range(n_tasks), consumer=fold)
        tables = fold.finalize().tables()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return tables, peak


def _run_materialised(n_tasks: int) -> tuple:
    """(tables, peak_bytes) of the historical collect-then-reduce path."""
    engine = CampaignEngine(_synthetic_rows, jobs=1)
    tracemalloc.start()
    try:
        per_task = engine.run(range(n_tasks))
        rows = [row for task_rows in per_task for row in task_rows]
        tables = SweepAccumulator.from_rows(
            rows,
            methods=_CONFIG["methods"],
            objectives=_CONFIG["objectives"],
        ).tables()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return tables, peak


def test_stream_memory_bounded():
    n_replicates = 2560 if full_scale() else 320
    _CONFIG["n_replicates"] = n_replicates
    n_settings = len(_CONFIG["settings"])
    n_tasks = n_settings * n_replicates
    n_rows = n_tasks * _rows_per_task()
    assert n_rows >= 100_000

    small_tasks = n_tasks // 8
    base_small = _run_baseline(small_tasks)
    _, peak_small = _run_streamed(small_tasks)
    base_full = _run_baseline(n_tasks)
    streamed_tables, peak_streamed = _run_streamed(n_tasks)
    materialised_tables, peak_materialised = _run_materialised(n_tasks)

    banner(
        "E-stream - streaming aggregation memory on a "
        f"{n_rows:,}-row campaign",
        "streamed aggregates bitwise-identical; aggregation state "
        "O(settings), not O(rows)",
    )
    ratio = peak_streamed / peak_materialised
    # what the aggregation subsystem *adds* beyond engine bookkeeping
    overhead_small = max(peak_small - base_small, 1)
    overhead_full = max(peak_streamed - base_full, 1)
    print(f"campaign: {n_settings} settings x {n_replicates} replicates = "
          f"{n_tasks:,} tasks, {n_rows:,} rows")
    print(f"  materialised peak:  {peak_materialised / 1e6:8.2f} MB")
    print(f"  streamed peak:      {peak_streamed / 1e6:8.2f} MB "
          f"({100 * ratio:.1f}% of materialised)")
    print(f"  aggregation state:  {overhead_full / 1e3:8.1f} KB "
          f"(vs {overhead_small / 1e3:.1f} KB at 1/8 the rows)")

    # Claim 1: identical aggregates, every byte (synthetic rows are
    # deterministic, so even the runtime table must match).
    assert json.dumps(streamed_tables, sort_keys=True) == json.dumps(
        materialised_tables, sort_keys=True
    ), "streamed aggregate diverged from the in-memory reference"

    # Claim 2: bounded memory. The streamed peak must be a small
    # fraction of materialising the rows, and the aggregation state must
    # not grow with the row count (8x rows, settings fixed -> flat).
    assert ratio < 0.25, (
        f"streamed peak is {100 * ratio:.1f}% of materialised "
        "(expected well under 25%)"
    )
    assert overhead_full < max(4 * overhead_small, 1_000_000), (
        f"aggregation state grew from {overhead_small} to "
        f"{overhead_full} bytes under 8x rows (expected O(settings): "
        "flat, modulo allocator noise)"
    )

    payload = {
        "benchmark": "stream_memory",
        "full_scale": full_scale(),
        "n_settings": n_settings,
        "n_replicates": n_replicates,
        "n_tasks": n_tasks,
        "n_rows": n_rows,
        "peak_bytes_materialised": peak_materialised,
        "peak_bytes_streamed": peak_streamed,
        "peak_bytes_baseline": base_full,
        "aggregation_overhead_bytes": overhead_full,
        "aggregation_overhead_bytes_eighth_scale": overhead_small,
        "streamed_over_materialised": ratio,
        "aggregates_bitwise_identical": True,
    }
    _OUT.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    print(f"  wrote {_OUT.name}")
