"""E2 — Section 6.1 headline: LPRG/G value ratios.

Paper: "Over all the platforms that we evaluated, the ratio of the
objective values achieved by LPRG to that by G is: 1.98 for MAXMIN and
1.02 for SUM."

The reproduction sweeps a stratified grid subsample and reports the same
two numbers. Expected shape: MAXMIN ratio well above 1 (LPRG much
fairer), SUM ratio slightly above 1.
"""

from repro.experiments import headline_ratios, run_sweep, sample_settings

from benchmarks.conftest import banner, sweep_jobs


def test_headline_lprg_over_g(benchmark, scale):
    def run():
        settings = sample_settings(
            scale["headline_settings"], rng=42, k_values=[5, 15, 25, 35]
        )
        rows = run_sweep(
            settings,
            methods=("greedy", "lprg"),
            objectives=("maxmin", "sum"),
            n_platforms=scale["headline_platforms"],
            rng=42,
            jobs=sweep_jobs(),  # campaign engine: identical output
        )
        return headline_ratios(rows)

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)

    banner(
        "E2 / Section 6.1 - headline LPRG/G objective-value ratios",
        "LPRG/G = 1.98 for MAXMIN, 1.02 for SUM",
    )
    print(f"measured LPRG/G (MAXMIN): {ratios['maxmin']:.3f}   [paper: 1.98]")
    print(f"measured LPRG/G (SUM):    {ratios['sum']:.3f}   [paper: 1.02]")
    # Shape assertions: LPRG dominates G clearly on MAXMIN, mildly on SUM.
    assert ratios["maxmin"] > 1.1
    assert 0.95 < ratios["sum"] < 1.5
    assert ratios["maxmin"] > ratios["sum"]
