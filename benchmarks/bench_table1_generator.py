"""E1 — Table 1: the parameter grid and platform generator.

Paper: Table 1 defines the grid (115,200 settings x 10 platforms; the
paper reports 269,835 configurations actually evaluated). This bench
times platform generation over a grid subsample and verifies the
sampling law (values uniform in [mean(1-h), mean(1+h)]).
"""

import numpy as np

from repro.experiments import grid_size, sample_settings, spec_for
from repro.platform.generator import generate_platform

from benchmarks.conftest import banner, full_scale


def _generate_sample(n_settings: int, seed: int = 0) -> list:
    settings = sample_settings(n_settings, rng=seed)
    platforms = []
    for i, setting in enumerate(settings):
        platforms.append(generate_platform(spec_for(setting), rng=seed + i))
    return platforms


def test_table1_grid_and_generator(benchmark):
    n = 200 if full_scale() else 50
    platforms = benchmark.pedantic(
        _generate_sample, args=(n,), rounds=1, iterations=1
    )

    banner(
        "E1 / Table 1 - parameter grid + random platform generator",
        "grid = 10 K x 8 conn x 4 het x 4 g x 9 bw x 10 maxcon = 115,200 "
        "settings; ~270k platform configurations evaluated",
    )
    print(f"full factorial grid size (settings): {grid_size():,}")
    print(f"paper total with 10 platforms/setting: {grid_size() * 10:,}")
    print(f"generated here: {len(platforms)} platforms (subsample)")
    ks = sorted({p.n_clusters for p in platforms})
    print(f"K values covered: {ks}")
    mean_links = float(np.mean([len(p.links) for p in platforms]))
    print(f"mean backbone links per platform: {mean_links:.1f}")
    assert len(platforms) == n
