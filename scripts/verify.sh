#!/usr/bin/env bash
# Tier-1 verification + subsystem benchmark smoke.
#
#   scripts/verify.sh            # full test suite + all subsystem gates
#   REPRO_JOBS=4 scripts/verify.sh   # engine-backed benchmarks on 4 workers
#
# The benchmark step runs the parallel-scaling benchmark (which asserts
# serial/parallel bitwise equivalence and, given >= 4 cores, >1.5x
# speedup at 4 workers) plus the two engine-backed paper benchmarks, so
# a regression in the campaign engine fails verification even though
# bench_*.py files are not collected by the plain pytest run.
#
# The warm-start smoke (bench_warmstart.py) gates the LPSession
# subsystem: warm LPRR must match cold bitwise AND spend strictly fewer
# (>= 30% fewer) simplex iterations, and the warm session must beat the
# cold-HiGHS-per-solve reference at every K; it refreshes
# BENCH_warmstart.json.
#
# The simplex-core step gates the revised engine (repro/lp/revised.py +
# repro/lp/basis_lu.py): the engine/session/tableau suites run
# explicitly, and the core smoke (bench_simplex_core.py) asserts the
# LU-factorized warm chains beat cold HiGHS on large-K LPRR pin chains
# and on B&B bound-flip chains; it refreshes BENCH_simplex_core.json.
#
# The API step re-runs the public-surface snapshot + examples smoke on
# their own (fast, loud names in the log), and the api-reuse smoke gates
# the Solver facade's cross-call state: reused solves must stay bitwise-
# identical while cutting cold LP builds >= 30%; it refreshes
# BENCH_api_reuse.json.
#
# The streaming step gates the streaming aggregation subsystem
# (repro/parallel/stream.py): it re-runs the equivalence + accumulator
# suites explicitly — so a deselecting/skipping change cannot silently
# drop them (pytest exits non-zero when a named file collects nothing) —
# and the memory smoke (bench_stream_memory.py) asserts streamed
# aggregates are bitwise-identical to the in-memory reference with peak
# aggregation state O(settings), not O(rows); it refreshes
# BENCH_stream_memory.json.
#
# The sharding step gates the distributed orchestration subsystem
# (repro/distrib/): the partition-property + campaign suites run
# explicitly, and the shard-merge smoke (bench_shard_merge.py) asserts
# merged aggregates from shards {1,2,5} x backends
# {inline,process,subprocess} — including a shard killed mid-run and
# resumed — are bitwise-identical to the serial fold; it refreshes
# BENCH_shard_merge.json.
#
# The supervision step gates the fault-tolerance subsystem
# (repro/util/faults.py + repro/distrib/supervise.py): the fault-plan,
# supervision and recovery-property suites run explicitly, and the
# fault-recovery smoke (bench_fault_recovery.py) asserts that injected
# faults — transient task-error storms, shard kills with torn
# checkpoint tails, stragglers — are healed by retry/resume/stealing
# with the merged aggregate bitwise-identical to the fault-free serial
# fold and bounded recovery cost; it refreshes BENCH_fault_recovery.json.
#
# The service step gates the resident-solver HTTP layer
# (repro/service/): the jobstore, coalescer and end-to-end app suites
# run explicitly, and the service smoke (bench_service.py) asserts a
# same-platform request storm is served >= 95% from warm solvers,
# >= 1000 sweep jobs held in flight all drain to done, and streamed
# rows fold client-side bitwise into the serial jobs=1 reference; it
# refreshes BENCH_service.json.
#
# The dynamic step gates the online re-scheduling subsystem
# (repro/dynamic/): the trace, scheduler and exactness-property suites
# run explicitly, and the online smoke (bench_online.py) asserts every
# incremental re-solve is bitwise-identical to the from-scratch oracle
# across every registered event-trace family, with >= 40% fewer simplex
# iterations on drift traces; it refreshes BENCH_online.json.
#
# The telemetry step gates the observability subsystem (repro/obs/):
# the trace, metrics, invisibility and service-observability suites run
# explicitly, and the telemetry smoke (bench_telemetry.py) asserts the
# disabled no-op path costs < 1% of a warm LPRR solve, fully-enabled
# tracing+metrics stays within 5% of the disabled chain, and results
# (solve values, sweep accumulator states) are bitwise-identical with
# telemetry on, off, or mixed; it refreshes BENCH_telemetry.json.
#
# Every BENCH_*.json gate is additionally verified to have been
# (re)emitted by THIS run (require_fresh below): a benchmark that
# silently skips, deselects, or exits before its assertions can no
# longer pass verification on the strength of a stale artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# mtime watermark: every benchmark artifact must end up newer than this
VERIFY_STAMP="$(mktemp)"
trap 'rm -f "$VERIFY_STAMP"' EXIT

require_fresh() {
    local artifact
    for artifact in "$@"; do
        if [[ ! -f "$artifact" ]]; then
            echo "verify.sh: ERROR: benchmark gate $artifact was never emitted" >&2
            exit 1
        fi
        if [[ ! "$artifact" -nt "$VERIFY_STAMP" ]]; then
            echo "verify.sh: ERROR: benchmark gate $artifact is stale" \
                 "(not refreshed by this verification run)" >&2
            exit 1
        fi
    done
}

echo "== tier-1: full test suite =="
python -m pytest -x -q

echo
echo "== api surface + examples smoke =="
python -m pytest -x -q tests/test_api_surface.py tests/test_examples_smoke.py

echo
echo "== benchmark smoke: campaign engine =="
python -m pytest -x -q -s \
    benchmarks/bench_parallel_scaling.py \
    benchmarks/bench_headline_ratios.py \
    benchmarks/bench_fig5_lprg_vs_g.py

echo
echo "== benchmark smoke: warm-started LP re-solves =="
python -m pytest -x -q -s benchmarks/bench_warmstart.py
require_fresh BENCH_warmstart.json

echo
echo "== revised simplex core: engine suites (must not be deselected) =="
python -m pytest -x -q \
    tests/test_lp_revised.py \
    tests/test_lp_simplex.py \
    tests/test_lp_session.py

echo
echo "== benchmark smoke: revised-simplex core =="
python -m pytest -x -q -s benchmarks/bench_simplex_core.py
require_fresh BENCH_simplex_core.json

echo
echo "== benchmark smoke: solver facade reuse =="
python -m pytest -x -q -s benchmarks/bench_api_reuse.py
require_fresh BENCH_api_reuse.json

echo
echo "== streaming aggregation: equivalence suites (must not be deselected) =="
python -m pytest -x -q \
    tests/test_stream_equivalence.py \
    tests/test_stream_accumulators.py

echo
echo "== benchmark smoke: streaming aggregation memory =="
python -m pytest -x -q -s benchmarks/bench_stream_memory.py
require_fresh BENCH_stream_memory.json

echo
echo "== sharded orchestration: merge + campaign suites (must not be deselected) =="
python -m pytest -x -q \
    tests/test_distrib_merge.py \
    tests/test_distrib_campaign.py

echo
echo "== benchmark smoke: sharded campaign merge =="
python -m pytest -x -q -s benchmarks/bench_shard_merge.py
require_fresh BENCH_shard_merge.json

echo
echo "== supervision: fault + recovery suites (must not be deselected) =="
python -m pytest -x -q \
    tests/test_faults.py \
    tests/test_supervise.py \
    tests/test_fault_recovery_property.py

echo
echo "== benchmark smoke: supervised fault recovery =="
python -m pytest -x -q -s benchmarks/bench_fault_recovery.py
require_fresh BENCH_fault_recovery.json

echo
echo "== service layer: jobstore + coalescer + e2e suites (must not be deselected) =="
python -m pytest -x -q \
    tests/test_service_jobstore.py \
    tests/test_service_coalescer.py \
    tests/test_service_app.py

echo
echo "== benchmark smoke: resident solver service =="
python -m pytest -x -q -s benchmarks/bench_service.py
require_fresh BENCH_service.json

echo
echo "== online re-scheduling: dynamic suites (must not be deselected) =="
python -m pytest -x -q \
    tests/test_dynamic_trace.py \
    tests/test_dynamic_online.py \
    tests/test_dynamic_property.py

echo
echo "== benchmark smoke: online incremental re-solve =="
python -m pytest -x -q -s benchmarks/bench_online.py
require_fresh BENCH_online.json

echo
echo "== observability: telemetry suites (must not be deselected) =="
python -m pytest -x -q \
    tests/test_obs_trace.py \
    tests/test_obs_metrics.py \
    tests/test_obs_invisibility.py \
    tests/test_obs_logging_and_timing.py \
    tests/test_distrib_heartbeat.py \
    tests/test_service_observability.py

echo
echo "== benchmark smoke: telemetry overhead =="
python -m pytest -x -q -s benchmarks/bench_telemetry.py
require_fresh BENCH_telemetry.json

echo
echo "verify.sh: all checks passed"
