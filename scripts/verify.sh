#!/usr/bin/env bash
# Tier-1 verification + parallel-subsystem benchmark smoke.
#
#   scripts/verify.sh            # full test suite + scaling smoke
#   REPRO_JOBS=4 scripts/verify.sh   # engine-backed benchmarks on 4 workers
#
# The benchmark step runs the parallel-scaling benchmark (which asserts
# serial/parallel bitwise equivalence and, given >= 4 cores, >1.5x
# speedup at 4 workers) plus the two engine-backed paper benchmarks, so
# a regression in the campaign engine fails verification even though
# bench_*.py files are not collected by the plain pytest run.
#
# The warm-start smoke (bench_warmstart.py) gates the LPSession
# subsystem: warm LPRR must match cold bitwise AND spend strictly fewer
# (>= 30% fewer) simplex iterations; it refreshes BENCH_warmstart.json.
#
# The API step re-runs the public-surface snapshot + examples smoke on
# their own (fast, loud names in the log), and the api-reuse smoke gates
# the Solver facade's cross-call state: reused solves must stay bitwise-
# identical while cutting cold LP builds >= 30%; it refreshes
# BENCH_api_reuse.json.
#
# The streaming step gates the streaming aggregation subsystem
# (repro/parallel/stream.py): it re-runs the equivalence + accumulator
# suites explicitly — so a deselecting/skipping change cannot silently
# drop them (pytest exits non-zero when a named file collects nothing) —
# and the memory smoke (bench_stream_memory.py) asserts streamed
# aggregates are bitwise-identical to the in-memory reference with peak
# aggregation state O(settings), not O(rows); it refreshes
# BENCH_stream_memory.json.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: full test suite =="
python -m pytest -x -q

echo
echo "== api surface + examples smoke =="
python -m pytest -x -q tests/test_api_surface.py tests/test_examples_smoke.py

echo
echo "== benchmark smoke: campaign engine =="
python -m pytest -x -q -s \
    benchmarks/bench_parallel_scaling.py \
    benchmarks/bench_headline_ratios.py \
    benchmarks/bench_fig5_lprg_vs_g.py

echo
echo "== benchmark smoke: warm-started LP re-solves =="
python -m pytest -x -q -s benchmarks/bench_warmstart.py

echo
echo "== benchmark smoke: solver facade reuse =="
python -m pytest -x -q -s benchmarks/bench_api_reuse.py

echo
echo "== streaming aggregation: equivalence suites (must not be deselected) =="
python -m pytest -x -q \
    tests/test_stream_equivalence.py \
    tests/test_stream_accumulators.py

echo
echo "== benchmark smoke: streaming aggregation memory =="
python -m pytest -x -q -s benchmarks/bench_stream_memory.py

echo
echo "verify.sh: all checks passed"
