#!/usr/bin/env python
"""Regenerate the paper's Figures 5-7 and Section-6 headline numbers.

A compact driver over :mod:`repro.experiments`: runs laptop-scale
versions of the paper's sweeps and renders each figure as a numeric
table plus an ASCII plot. Pass ``--full`` for larger sweeps (several
minutes).

Run:  python examples/reproduce_figures.py [--full]
"""

import argparse
import sys

from repro.experiments import figure5, figure6, figure7, render_figure


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="larger sweeps (closer to the paper)"
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    if args.full:
        fig5_kwargs = dict(k_values=(5, 15, 25, 35, 45), settings_per_k=5,
                           platforms_per_setting=4)
        fig6_kwargs = dict(k_values=(15, 20, 25), settings_per_k=4,
                           platforms_per_setting=5)
        fig7_kwargs = dict(k_values=(10, 20, 30, 40),)
    else:
        fig5_kwargs = dict(k_values=(5, 15, 25), settings_per_k=2,
                           platforms_per_setting=2)
        fig6_kwargs = dict(k_values=(10, 15), settings_per_k=1,
                           platforms_per_setting=2)
        fig7_kwargs = dict(k_values=(8, 12, 16),)

    print("#" * 72)
    print("# Figure 5 (paper: LPRG/G vs LP bound over K, both objectives)")
    print("#" * 72)
    print(render_figure(figure5(rng=args.seed, **fig5_kwargs)))
    print()

    print("#" * 72)
    print("# Figure 6 (paper: LPRR close to the LP bound, 80 topologies)")
    print("#" * 72)
    print(render_figure(figure6(rng=args.seed, **fig6_kwargs)))
    print()

    print("#" * 72)
    print("# Figure 7 (paper: running times, log scale; LPRR ~ K^2 slower)")
    print("#" * 72)
    print(render_figure(figure7(rng=args.seed, **fig7_kwargs)))


if __name__ == "__main__":
    main(sys.argv[1:])
