#!/usr/bin/env python
"""Scenario: a physics analysis campaign across four institutions.

Models a CDF-Analysis-Farms-style Grid (the paper's motivating example:
"some Grids run primarily divisible load applications"): four sites with
very different cluster sizes run concurrent event-analysis campaigns and
compete for CPUs and wide-area bandwidth. The example compares all four
heuristics under both objectives, then executes the best schedule in the
flow-level simulator to show the steady state is actually achieved.

Run:  python examples/grid_campaign.py
"""

import numpy as np

from repro import (
    BackboneLink,
    Cluster,
    Platform,
    SteadyStateProblem,
    solve,
)
from repro.platform.cluster import equivalent_star_speed
from repro.schedule import build_periodic_schedule
from repro.simulation import FlowSimulator
from repro.simulation.metrics import summarize
from repro.util.tables import TextTable


def build_grid() -> Platform:
    """Four institutions joined by a small backbone mesh.

    Each site is a star cluster (front-end + workers) collapsed to its
    equivalent speed, as divisible-load theory allows.
    """
    # site: (workers, worker speed, worker link bw, frontend speed, g)
    sites = {
        "fermi": dict(workers=64, w_speed=2.0, w_bw=4.0, master=10.0, g=400.0),
        "cern": dict(workers=96, w_speed=1.5, w_bw=2.0, master=12.0, g=500.0),
        "lyon": dict(workers=24, w_speed=2.5, w_bw=4.0, master=8.0, g=250.0),
        "tokyo": dict(workers=12, w_speed=3.0, w_bw=6.0, master=6.0, g=150.0),
    }
    clusters = []
    for name, s in sites.items():
        speed = equivalent_star_speed(
            s["master"], [s["w_speed"]] * s["workers"], [s["w_bw"]] * s["workers"]
        )
        clusters.append(Cluster(name, speed=speed, g=s["g"], router=f"R-{name}"))

    routers = [f"R-{name}" for name in sites]
    backbone = [
        BackboneLink("transatlantic", ("R-fermi", "R-cern"), bw=20.0, max_connect=8),
        BackboneLink("geant", ("R-cern", "R-lyon"), bw=45.0, max_connect=12),
        BackboneLink("transpacific", ("R-fermi", "R-tokyo"), bw=12.0, max_connect=4),
        BackboneLink("sinet", ("R-cern", "R-tokyo"), bw=8.0, max_connect=4),
    ]
    return Platform(clusters, routers, backbone)


def main() -> None:
    platform = build_grid()
    print(platform.describe())
    print()

    # Campaign priorities: the Fermi analysis is urgent (payoff 2), the
    # Tokyo group contributes cycles but runs no campaign of its own.
    payoffs = [2.0, 1.0, 1.0, 0.0]

    table = TextTable(
        ["objective", "method", "value", "% of LP bound", "runtime (ms)"],
        float_fmt=".2f",
    )
    best = {}
    for objective in ("maxmin", "sum"):
        problem = SteadyStateProblem(platform, payoffs, objective=objective)
        bound = solve(problem, "lp")
        for method in ("greedy", "lpr", "lprg", "lprr"):
            result = solve(problem, method, rng=0)
            table.add_row(
                [
                    objective,
                    method,
                    result.value,
                    100.0 * result.value / bound.value if bound.value else 0.0,
                    result.runtime * 1e3,
                ]
            )
            if objective == "maxmin" and method == "lprg":
                best[objective] = (problem, result)
        table.add_row([objective, "lp (bound)", bound.value, 100.0, bound.runtime * 1e3])
    print(table.render())
    print()

    # Execute the MAXMIN/LPRG schedule for 10 periods in the simulator.
    problem, result = best["maxmin"]
    schedule = build_periodic_schedule(platform, result.allocation, denominator=1000)
    out = FlowSimulator(platform).run(schedule, n_periods=10)
    stats = summarize(out, schedule.throughputs)
    print("simulated execution of the LPRG schedule (MAXMIN):")
    print(f"  period Tp = {schedule.period}, horizon = 10 periods")
    print(f"  min achieved/nominal throughput: {stats['min_ratio']:.6f}")
    print(f"  late transfers: {stats['late_flows']}")
    print(f"  Jain fairness of achieved throughputs: {stats['jain_achieved']:.3f}")
    for k, app in enumerate(problem.applications):
        nominal = schedule.throughputs[k]
        achieved = out.achieved_throughputs()[k]
        print(f"  {app.name:<6} nominal {nominal:8.2f}  achieved {achieved:8.2f}")


if __name__ == "__main__":
    main()
