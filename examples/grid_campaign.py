#!/usr/bin/env python
"""Scenario: a physics analysis campaign across four institutions.

Models a CDF-Analysis-Farms-style Grid (the paper's motivating example:
"some Grids run primarily divisible load applications"): four sites with
very different cluster sizes run concurrent event-analysis campaigns and
compete for CPUs and wide-area bandwidth.

The example registers the testbed as a custom scenario — after which it
is constructible by name exactly like the built-in ``grid5000``/``das2``
presets — then compares every registered heuristic under both objectives
through one reused :class:`repro.Solver` per method (cross-call LP
template reuse makes the 2-objective × N-method grid cheap), and finally
executes the best schedule in the flow-level simulator to show the
steady state is actually achieved.

The closing sections run a small what-if *campaign* (a Table-1-style
parameter sweep) two ways. First through the streaming aggregation
subsystem: rows are folded into constant-size accumulators as replicate
tasks finish and the raw rows land in a JSONL sink file — memory stays
O(settings) however many replicates the campaign grows to, with
aggregates bitwise-independent of worker count and resume patterns.
Then the same campaign again as a *sharded* run through the
``repro.distrib`` orchestration layer — partitioned into shard
manifests, executed by a pluggable backend, and merged back — to show
the multi-host path produces the exact same aggregate tables.

Run:  python examples/grid_campaign.py
"""

import tempfile
from pathlib import Path

from repro import (
    BackboneLink,
    Cluster,
    Platform,
    Solver,
    SolverConfig,
    build_scenario,
    register_scenario,
    scenario_info,
)
from repro.platform.cluster import equivalent_star_speed
from repro.schedule import build_periodic_schedule
from repro.simulation import FlowSimulator
from repro.simulation.metrics import summarize
from repro.util.tables import TextTable


def cdf_farms(rng):
    """Four institutions joined by a small backbone mesh.

    Each site is a star cluster (front-end + workers) collapsed to its
    equivalent speed, as divisible-load theory allows. Campaign
    priorities: the Fermi analysis is urgent (payoff 2), the Tokyo group
    contributes cycles but runs no campaign of its own (payoff 0).
    """
    # site: (workers, worker speed, worker link bw, frontend speed, g)
    sites = {
        "fermi": dict(workers=64, w_speed=2.0, w_bw=4.0, master=10.0, g=400.0),
        "cern": dict(workers=96, w_speed=1.5, w_bw=2.0, master=12.0, g=500.0),
        "lyon": dict(workers=24, w_speed=2.5, w_bw=4.0, master=8.0, g=250.0),
        "tokyo": dict(workers=12, w_speed=3.0, w_bw=6.0, master=6.0, g=150.0),
    }
    clusters = []
    for name, s in sites.items():
        speed = equivalent_star_speed(
            s["master"], [s["w_speed"]] * s["workers"], [s["w_bw"]] * s["workers"]
        )
        clusters.append(Cluster(name, speed=speed, g=s["g"], router=f"R-{name}"))

    routers = [f"R-{name}" for name in sites]
    backbone = [
        BackboneLink("transatlantic", ("R-fermi", "R-cern"), bw=20.0, max_connect=8),
        BackboneLink("geant", ("R-cern", "R-lyon"), bw=45.0, max_connect=12),
        BackboneLink("transpacific", ("R-fermi", "R-tokyo"), bw=12.0, max_connect=4),
        BackboneLink("sinet", ("R-cern", "R-tokyo"), bw=8.0, max_connect=4),
    ]
    payoffs = [2.0, 1.0, 1.0, 0.0]
    return Platform(clusters, routers, backbone), payoffs


def main() -> None:
    register_scenario(
        "cdf-farms",
        cdf_farms,
        description="4-institution physics analysis campaign (CDF-style)",
        tags=("example",),
        overwrite=True,
    )
    print(f"registered scenario: {scenario_info('cdf-farms').description}")
    platform = build_scenario("cdf-farms").platform
    print(platform.describe())
    print()

    table = TextTable(
        ["objective", "method", "value", "% of LP bound", "runtime (ms)"],
        float_fmt=".2f",
    )
    best = {}
    # One solver per method, reused across both objectives: the second
    # objective's LP template is built fresh (different matrices), but
    # every re-run on the same problem family hits the solver's cache.
    solvers = {
        m: Solver(SolverConfig(method=m, seed=0))
        for m in ("greedy", "lpr", "lprg", "lprr")
    }
    for objective in ("maxmin", "sum"):
        problem = build_scenario("cdf-farms", objective=objective)
        bound = Solver(SolverConfig(method="lp")).solve(problem)
        for method, solver in solvers.items():
            report = solver.solve(problem)
            table.add_row(
                [
                    objective,
                    method,
                    report.value,
                    100.0 * report.value / bound.value if bound.value else 0.0,
                    report.runtime * 1e3,
                ]
            )
            if objective == "maxmin" and method == "lprg":
                best[objective] = (problem, report)
        table.add_row([objective, "lp (bound)", bound.value, 100.0, bound.runtime * 1e3])
    print(table.render())
    print()

    # Execute the MAXMIN/LPRG schedule for 10 periods in the simulator.
    problem, report = best["maxmin"]
    schedule = build_periodic_schedule(
        problem.platform, report.allocation, denominator=1000
    )
    out = FlowSimulator(problem.platform).run(schedule, n_periods=10)
    stats = summarize(out, schedule.throughputs)
    print("simulated execution of the LPRG schedule (MAXMIN):")
    print(f"  period Tp = {schedule.period}, horizon = 10 periods")
    print(f"  min achieved/nominal throughput: {stats['min_ratio']:.6f}")
    print(f"  late transfers: {stats['late_flows']}")
    print(f"  Jain fairness of achieved throughputs: {stats['jain_achieved']:.3f}")
    for k, app in enumerate(problem.applications):
        nominal = schedule.throughputs[k]
        achieved = out.achieved_throughputs()[k]
        print(f"  {app.name:<6} nominal {nominal:8.2f}  achieved {achieved:8.2f}")
    print()
    streaming_campaign()


def streaming_campaign() -> None:
    """A constant-memory what-if sweep via streaming aggregation.

    ``stream=True`` makes ``Solver.sweep`` fold each completed replicate
    into mergeable accumulators (never materialising the row list) and
    return the :class:`repro.SweepAccumulator` of aggregate tables; the
    raw rows go to the JSONL row sink for offline analysis.
    """
    from repro.experiments import sample_settings

    settings = sample_settings(3, rng=11, k_values=[4, 5])
    with tempfile.TemporaryDirectory() as tmp:
        sink = Path(tmp) / "campaign_rows.jsonl"
        solver = Solver(SolverConfig(stream=True, row_sink=str(sink)))
        agg = solver.sweep(
            settings,
            methods=("greedy", "lprg"),
            objectives=("maxmin", "sum"),
            n_platforms=2,
            rng=11,
        )
        with sink.open() as fh:
            n_sink_rows = sum(1 for _ in fh)
    print("streaming what-if campaign (constant-memory aggregation):")
    print(f"  folded {agg.n_rows} rows from {agg.n_tasks} replicate tasks; "
          f"{n_sink_rows} raw rows in the sink file")
    headline = agg.headline_ratios()
    print(f"  LPRG/G value ratio: MAXMIN {headline['maxmin']:.3f}, "
          f"SUM {headline['sum']:.3f}")
    table = TextTable(["K", "MAXMIN(LPRG)/LP", "MAXMIN(G)/LP"], float_fmt=".3f")
    greedy = dict(agg.mean_ratio_by_k("greedy", "maxmin"))
    for k, lprg_ratio in agg.mean_ratio_by_k("lprg", "maxmin"):
        table.add_row([k, lprg_ratio, greedy[k]])
    print(table.render())
    print()
    sharded_campaign(agg)


def sharded_campaign(reference) -> None:
    """The same campaign as a sharded multi-host run (repro.distrib).

    ``SolverConfig(shards=N, shard_backend=...)`` partitions the sweep
    into self-describing shard manifests, runs each shard with its own
    checkpoint + accumulator sidecar under ``shard_dir``, and merges the
    artifacts — the merged tables are bitwise those of the streamed
    (and serial) run, because sharding never touches seed derivation
    and the accumulator merge is exactly associative. Swap the backend
    to ``"subprocess"`` and each shard runs ``python -m
    repro.experiments shard run <manifest.json>`` in its own
    interpreter — the same contract a real remote host would follow.
    """
    import json

    from repro.experiments import sample_settings

    settings = sample_settings(3, rng=11, k_values=[4, 5])
    with tempfile.TemporaryDirectory() as tmp:
        shard_dir = Path(tmp) / "campaign"
        solver = Solver(
            SolverConfig(
                stream=True,
                shards=3,
                shard_backend="inline",  # or "process" / "subprocess"
                shard_dir=str(shard_dir),
            )
        )
        agg = solver.sweep(
            settings,
            methods=("greedy", "lprg"),
            objectives=("maxmin", "sum"),
            n_platforms=2,
            rng=11,
        )
        artifacts = sorted(p.name for p in shard_dir.iterdir())
    print("sharded what-if campaign (3 shards, merged):")
    print(f"  folded {agg.n_rows} rows from {agg.n_tasks} replicate tasks")
    print(f"  shard artifacts: {', '.join(artifacts[:3])}, ...")

    def sans_runtime(a):
        tables = a.tables()
        tables.pop("runtime_mean_by_k")  # wall clock differs across runs
        return json.dumps(tables, sort_keys=True)

    identical = sans_runtime(agg) == sans_runtime(reference)
    print(f"  merged tables bitwise-identical to the streamed run: "
          f"{identical}")
    stats = agg.method_failure_stats("lprg")
    print(f"  LPRG ratio-to-bound: mean {stats['mean_ratio']:.3f}, "
          f"median {stats['median_ratio']:.3f}, p95 {stats['p95_ratio']:.3f}")


if __name__ == "__main__":
    main()
