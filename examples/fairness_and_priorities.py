#!/usr/bin/env python
"""SUM vs MAXMIN: the fairness trade-off of Section 3.1.

The paper proposes two objectives: SUM (total weighted throughput,
Eq. 5) "risks that one application would be unduly favored and granted
most of the resources", while MAXMIN (Eq. 6) enforces weighted max-min
fairness. This example makes the trade-off concrete on a platform with
one very-well-connected cluster and two poorly-connected ones, then
shows how payoff factors implement priorities under MAXMIN.

Run:  python examples/fairness_and_priorities.py
"""

import numpy as np

from repro import (
    BackboneLink,
    Cluster,
    Platform,
    SteadyStateProblem,
    solve,
)
from repro.simulation.metrics import jain_index
from repro.util.tables import TextTable


def build_lopsided_platform() -> Platform:
    """'hub' has fat pipes to the compute farm; 'edge*' sit behind thin ones."""
    clusters = [
        Cluster("hub", speed=20.0, g=500.0, router="R0"),
        Cluster("edge1", speed=20.0, g=60.0, router="R1"),
        Cluster("edge2", speed=20.0, g=60.0, router="R2"),
        Cluster("farm", speed=400.0, g=450.0, router="R3"),
    ]
    routers = ["R0", "R1", "R2", "R3"]
    links = [
        BackboneLink("fat", ("R0", "R3"), bw=60.0, max_connect=6),
        BackboneLink("thin1", ("R1", "R3"), bw=6.0, max_connect=2),
        BackboneLink("thin2", ("R2", "R3"), bw=6.0, max_connect=2),
    ]
    return Platform(clusters, routers, links)


def main() -> None:
    platform = build_lopsided_platform()
    payoffs = [1.0, 1.0, 1.0, 0.0]  # the farm runs no application

    print("Part 1 - SUM maximizes total payoff, MAXMIN protects the weak")
    print("-" * 66)
    table = TextTable(
        ["objective", "hub", "edge1", "edge2", "total", "Jain index"],
        float_fmt=".1f",
    )
    for objective in ("sum", "maxmin"):
        problem = SteadyStateProblem(platform, payoffs, objective=objective)
        alloc = solve(problem, "milp").allocation  # small enough for exact
        t = alloc.throughputs
        table.add_row(
            [objective, t[0], t[1], t[2], t[:3].sum(), jain_index(t[:3])]
        )
    print(table.render())
    print()
    print("SUM funnels nearly the whole farm to the well-connected hub;")
    print("MAXMIN lifts the worst-off application as high as its thin pipe")
    print("allows before handing out the slack - fairer (higher Jain index)")
    print("at some cost in total throughput.")
    print()

    print("Part 2 - payoff factors as priorities under MAXMIN")
    print("-" * 66)
    table2 = TextTable(
        ["hub payoff", "hub alpha", "edge1 alpha", "edge2 alpha",
         "hub alpha*pi", "edge alpha*pi"],
        float_fmt=".1f",
    )
    for hub_payoff in (1.0, 2.0, 4.0):
        problem = SteadyStateProblem(
            platform, [hub_payoff, 1.0, 1.0, 0.0], objective="maxmin"
        )
        alloc = solve(problem, "milp").allocation
        t = alloc.throughputs
        table2.add_row(
            [hub_payoff, t[0], t[1], t[2], t[0] * hub_payoff, t[1] * 1.0]
        )
    print(table2.render())
    print()
    print("MAXMIN protects min_k alpha_k * pi_k: the edge applications are")
    print("pinned at 32 by their thin pipes, so the objective equals 32*1")
    print("regardless of the hub. As the hub's payoff grows, the raw")
    print("throughput it needs to stay at least 'equally served' shrinks")
    print("(alpha >= 32/pi); any farm capacity beyond that is slack the")
    print("solver may hand out arbitrarily - priorities cap what the hub")
    print("can *demand*, not what it may receive for free.")


if __name__ == "__main__":
    main()
