#!/usr/bin/env python
"""Service client walkthrough: submit, stream, fold, verify.

Boots the resident solver service (``repro.service``) in-process, then
drives it exactly like a remote client would:

1. ``POST /solve`` — one synchronous solve of a registered platform
   scenario; the response is bitwise the facade reference
   ``Solver(cfg).solve(build_scenario(...), rng=seed)``.
2. ``POST /sweep`` with ``"hold": true`` — the guaranteed-complete
   streaming recipe: open ``GET /jobs/{id}/stream`` first, wait for the
   ``status`` event (the subscription is now live), then ``POST
   /jobs/{id}/start`` so not a single row can slip past the stream.
3. Fold the streamed rows client-side with
   :class:`~repro.parallel.stream.SweepAccumulator` and check the fold
   equals the server's own aggregate — the determinism contract that
   makes the stream trustworthy.

Everything runs over the in-process ASGI test client, so the example
needs no sockets and no running server; point the same request bodies
at ``python -m repro.experiments serve`` for the real HTTP deployment.

Run:  python examples/service_client.py
"""

import json

from repro.parallel.stream import SweepAccumulator
from repro.experiments.persistence import row_from_dict
from repro.service import create_app
from repro.service.testing import AsgiTestClient


def main() -> None:
    app = create_app(max_workers=4)
    client = AsgiTestClient(app)
    try:
        # --------------------------------------------------------------
        # 1. Discovery + one synchronous solve.
        # --------------------------------------------------------------
        methods = client.get("/methods").json()["methods"]
        print(f"service up, methods: {', '.join(methods)}")

        body = {"scenario": "das2", "seed": 7, "scenario_seed": 7,
                "config": {"method": "lprg"}}
        report = client.post("/solve", body).json()["report"]
        print(f"solve das2/lprg: objective {report['value']:.2f} "
              f"({report['n_lp_solves']} LP solves)")
        print()

        # --------------------------------------------------------------
        # 2. A held sweep job, streamed with the complete-rows recipe.
        # --------------------------------------------------------------
        sweep = {
            "settings": [
                {"K": 4, "connectivity": 0.5, "heterogeneity": 0.4,
                 "mean_g": 250.0, "mean_bw": 30.0, "mean_maxcon": 10.0},
            ],
            "methods": ["greedy", "lprg"],
            "objectives": ["maxmin"],
            "n_platforms": 2,
            "seed": 42,
            "hold": True,
        }
        job = client.post("/sweep", sweep).json()["job"]
        job_id = job["job_id"]
        print(f"submitted held sweep job {job_id}")

        handle = client.stream(f"/jobs/{job_id}/stream")
        events = handle.iter_events(timeout=300)
        name, data = next(events)
        print(f"stream open, first event: {name} ({data['status']})")
        client.post(f"/jobs/{job_id}/start")  # now release it

        rows = []
        for name, data in events:
            if name == "rows":
                rows.extend(data["rows"])
                print(f"  +{len(data['rows'])} rows "
                      f"(total {len(rows)})")
            elif name == "progress":
                print(f"  progress {data['done']}/{data['total']}")
            elif name in ("done", "failed"):
                print(f"  terminal event: {name}")
                break

        # --------------------------------------------------------------
        # 3. Client-side fold == the server's aggregate.
        # --------------------------------------------------------------
        folded = SweepAccumulator.from_rows(
            [row_from_dict(r) for r in rows],
            methods=sweep["methods"], objectives=sweep["objectives"],
        )
        server = client.get(f"/jobs/{job_id}/result").json()["result"]

        def sans_runtime(tables):
            out = dict(tables)
            out.pop("runtime_mean_by_k")  # wall clocks differ run to run
            return json.dumps(out, sort_keys=True)

        identical = sans_runtime(folded.tables()) == sans_runtime(
            server["tables"]
        )
        print()
        print(f"streamed {len(rows)} rows; client-side fold matches the "
              f"server aggregate: {identical}")
        ratios = folded.tables()["mean_ratio_by_k"]
        for series, by_k in sorted(ratios.items()):
            for k, ratio in by_k:
                print(f"  {series:>14} K={k}: {ratio:.4f} of the LP bound")
    finally:
        app.service.close()


if __name__ == "__main__":
    main()
