#!/usr/bin/env python
"""Adaptability: re-computing the periodic schedule as resources drift.

The paper's third argument for steady-state scheduling (Section 1):
"Because the schedule is periodic, it is possible to dynamically record
the observed performance during the current period, and to inject this
information into the algorithm that will compute the optimal schedule
for the next period. This makes it possible to react on the fly to
resource availability variations, which is the common case on
non-dedicated Grid platforms."

This example simulates exactly that: cluster speeds and local-link
capacities follow a random walk (external load on a shared platform);
an *adaptive* scheduler re-runs LPRG every epoch on the observed
capacities, while a *static* scheduler keeps the epoch-0 allocation and
scales it down just enough to stay feasible. The adaptive schedule
consistently recovers most of the per-epoch LP bound; the static one
decays as the platform drifts away from its assumptions.

Run:  python examples/adaptive_rescheduling.py
"""

import numpy as np

from repro import (
    Cluster,
    Platform,
    PlatformSpec,
    SteadyStateProblem,
    generate_platform,
    solve,
)
from repro.core.allocation import Allocation
from repro.util.tables import TextTable


def perturb(platform: Platform, rng: np.random.Generator, drift: float = 0.25) -> Platform:
    """One epoch of resource drift: speeds and g wander multiplicatively."""
    clusters = []
    for c in platform.clusters:
        factor_s = float(np.exp(rng.normal(0.0, drift)))
        factor_g = float(np.exp(rng.normal(0.0, drift)))
        clusters.append(
            Cluster(c.name, speed=c.speed * factor_s, g=c.g * factor_g, router=c.router)
        )
    return Platform(
        clusters,
        platform.routers,
        list(platform.links.values()),
        routes={pair: platform.route(*pair) for pair in platform.routed_pairs()},
    )


def feasible_scaling(platform: Platform, alloc: Allocation) -> float:
    """Largest theta such that theta * alpha (same betas) is valid.

    Connections are unchanged, so only the linear capacity constraints
    (compute, local links, route bandwidth) bind; theta is the minimum
    capacity/usage ratio.
    """
    theta = 1.0
    speeds = platform.speeds
    g = platform.local_capacities
    for k in range(platform.n_clusters):
        load = alloc.compute_load(k)
        if load > 0:
            theta = min(theta, speeds[k] / load)
        traffic = alloc.link_traffic(k)
        if traffic > 0:
            theta = min(theta, g[k] / traffic)
    for k, l, amount, n_conn in alloc.remote_transfers():
        route = platform.route(k, l)
        if route.links and amount > 0:
            theta = min(theta, n_conn * route.bandwidth / amount)
    return max(0.0, theta)


def main() -> None:
    rng = np.random.default_rng(99)
    spec = PlatformSpec(
        n_clusters=8, connectivity=0.5, heterogeneity=0.5,
        mean_g=250.0, mean_bw=40.0, mean_max_connect=10.0,
        speed_heterogeneity=0.5,
    )
    platform = generate_platform(spec, rng=rng)
    payoffs = rng.uniform(0.8, 1.2, 8)

    # Epoch 0: both strategies start from the same LPRG schedule.
    problem0 = SteadyStateProblem(platform, payoffs, objective="maxmin")
    static_alloc = solve(problem0, "lprg").allocation

    table = TextTable(
        ["epoch", "LP bound", "adaptive LPRG", "static (scaled)",
         "adaptive %", "static %"],
        float_fmt=".1f",
    )
    adaptive_total = static_total = bound_total = 0.0
    current = platform
    for epoch in range(8):
        problem = SteadyStateProblem(current, payoffs, objective="maxmin")
        bound = solve(problem, "lp").value
        adaptive = solve(problem, "lprg").value
        theta = feasible_scaling(current, static_alloc)
        scaled = Allocation(static_alloc.alpha * theta, static_alloc.beta.copy())
        assert problem.check(scaled).ok
        static_value = problem.objective_value(scaled)

        table.add_row(
            [
                epoch, bound, adaptive, static_value,
                100.0 * adaptive / bound if bound else 0.0,
                100.0 * static_value / bound if bound else 0.0,
            ]
        )
        adaptive_total += adaptive
        static_total += static_value
        bound_total += bound
        current = perturb(current, rng)

    print(table.render())
    print()
    print(
        f"cumulative payoff: adaptive {adaptive_total:.0f} "
        f"({100 * adaptive_total / bound_total:.1f}% of the moving bound), "
        f"static {static_total:.0f} "
        f"({100 * static_total / bound_total:.1f}%)"
    )
    print()
    print("Re-solving each period costs one LP (milliseconds, Figure 7)")
    print("and keeps the schedule near the bound; a frozen schedule decays")
    print("as the platform drifts - the paper's adaptability argument.")


if __name__ == "__main__":
    main()
