#!/usr/bin/env python
"""Adaptability: incremental re-scheduling as resources drift.

The paper's third argument for steady-state scheduling (Section 1):
"Because the schedule is periodic, it is possible to dynamically record
the observed performance during the current period, and to inject this
information into the algorithm that will compute the optimal schedule
for the next period. This makes it possible to react on the fly to
resource availability variations, which is the common case on
non-dedicated Grid platforms."

This example simulates exactly that: cluster speeds and local-link
capacities follow a random walk (external load on a shared platform),
encoded as a :func:`repro.dynamic.drift_trace` of ``cpu-drift`` /
``bw-drift`` events. An *adaptive* :class:`repro.dynamic.
OnlineScheduler` absorbs each event as an in-place RHS edit on a live
``LPSession`` and re-solves from the carried basis — a handful of
simplex pivots instead of a from-scratch solve (the scheduler's
built-in oracle re-solves cold after every event, so the pivot savings
are measured against a real baseline, and every incremental answer is
checked bitwise against it). A *static* scheduler keeps the epoch-0
allocation and scales it down just enough to stay feasible; it decays
as the platform drifts away from its assumptions.

Run:  python examples/adaptive_rescheduling.py
"""

import numpy as np

from repro import (
    DynamicOptions,
    Platform,
    PlatformSpec,
    SteadyStateProblem,
    generate_platform,
)
from repro.core.allocation import Allocation
from repro.dynamic import OnlineScheduler, drift_trace
from repro.util.tables import TextTable


def feasible_scaling(platform: Platform, alloc: Allocation) -> float:
    """Largest theta such that theta * alpha (same betas) is valid.

    Connections are unchanged, so only the linear capacity constraints
    (compute, local links, route bandwidth) bind; theta is the minimum
    capacity/usage ratio.
    """
    theta = 1.0
    speeds = platform.speeds
    g = platform.local_capacities
    for k in range(platform.n_clusters):
        load = alloc.compute_load(k)
        if load > 0:
            theta = min(theta, speeds[k] / load)
        traffic = alloc.link_traffic(k)
        if traffic > 0:
            theta = min(theta, g[k] / traffic)
    for k, l, amount, n_conn in alloc.remote_transfers():
        route = platform.route(k, l)
        if route.links and amount > 0:
            theta = min(theta, n_conn * route.bandwidth / amount)
    return max(0.0, theta)


def main() -> None:
    rng = np.random.default_rng(99)
    n_clusters = 8
    spec = PlatformSpec(
        n_clusters=n_clusters, connectivity=0.5, heterogeneity=0.5,
        mean_g=250.0, mean_bw=40.0, mean_max_connect=10.0,
        speed_heterogeneity=0.5,
    )
    platform = generate_platform(spec, rng=rng)
    payoffs = rng.uniform(0.8, 1.2, n_clusters)
    problem = SteadyStateProblem(platform, payoffs, objective="maxmin")

    # The drifting platform, as a deterministic event timeline.
    trace = drift_trace(n_clusters, n_events=12, seed=17, magnitude=0.25)

    # The adaptive scheduler re-solves the live LPSession after every
    # event; replay is off (we only need values here), the oracle stays
    # on so each warm re-solve is priced against — and bitwise-checked
    # against — a from-scratch solve.
    scheduler = OnlineScheduler(
        problem, options=DynamicOptions(replay=False, check_oracle=True)
    )
    static_alloc = scheduler.allocation

    table = TextTable(
        ["event", "LP bound", "adaptive", "static (scaled)",
         "adaptive %", "static %", "warm pivots", "cold pivots"],
        float_fmt=".1f",
    )
    adaptive_total = static_total = bound_total = 0.0
    records = []
    for i, event in enumerate(trace):
        record = scheduler.step(event)
        records.append(record)
        drifted = scheduler.platform
        theta = feasible_scaling(drifted, static_alloc)
        scaled = Allocation(static_alloc.alpha * theta, static_alloc.beta.copy())
        static_value = SteadyStateProblem(
            drifted, payoffs, objective="maxmin"
        ).objective_value(scaled)
        bound = record.value
        table.add_row(
            [
                i, bound, record.alloc_value, static_value,
                100.0 * record.alloc_value / bound if bound else 0.0,
                100.0 * static_value / bound if bound else 0.0,
                record.warm_iterations, record.oracle_iterations,
            ]
        )
        adaptive_total += record.alloc_value
        static_total += static_value
        bound_total += bound

    print(table.render())
    print()
    print(
        f"cumulative payoff: adaptive {adaptive_total:.0f} "
        f"({100 * adaptive_total / bound_total:.1f}% of the moving bound), "
        f"static {static_total:.0f} "
        f"({100 * static_total / bound_total:.1f}%)"
    )
    warm = sum(r.warm_iterations for r in records)
    cold = sum(r.oracle_iterations for r in records)
    matches = all(r.oracle_match for r in records)
    print(
        f"re-solve cost: {warm} warm pivots vs {cold} from-scratch "
        f"({100.0 * (1.0 - warm / cold):.1f}% fewer); "
        f"bitwise oracle match: {matches}"
    )
    print()
    print("Each event is one or two RHS edits on the live LP; the carried")
    print("basis absorbs them in a few dual-simplex pivots, so adapting")
    print("costs far less than the (already cheap) from-scratch solve -")
    print("the paper's adaptability argument, made incremental.")


if __name__ == "__main__":
    main()
