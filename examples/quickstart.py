#!/usr/bin/env python
"""Quickstart: schedule three divisible-load applications on a small Grid.

Builds a 6-cluster random platform (the paper's Section-2 model), defines
one application per cluster with different priorities, and solves the
steady-state problem through the :class:`repro.Solver` facade: a typed
:class:`repro.SolverConfig` picks the method (LPRG, the paper's best
practical heuristic), and the returned :class:`repro.SolveReport` carries
the allocation plus the configuration echo and solver statistics. The
same solver object is then reconfigured for the LP upper bound before
the periodic schedule is reconstructed.

Run:  python examples/quickstart.py
"""

from repro import (
    MAXMIN,
    PlatformSpec,
    Solver,
    SolverConfig,
    SteadyStateProblem,
    generate_platform,
    method_info,
    validate_allocation,
)
from repro.schedule import build_periodic_schedule


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A random multi-cluster platform (Table-1-style parameters).
    # ------------------------------------------------------------------
    spec = PlatformSpec(
        n_clusters=6,
        connectivity=0.5,        # probability two clusters are linked
        heterogeneity=0.5,       # spread of g / bw / max-connect
        mean_g=250.0,            # local serial-link capacity
        mean_bw=40.0,            # per-connection backbone bandwidth
        mean_max_connect=10.0,   # connections allowed per backbone link
        speed_heterogeneity=0.5,  # clusters differ in computing speed
    )
    platform = generate_platform(spec, rng=2024)
    print(platform.describe())
    print()

    # ------------------------------------------------------------------
    # 2. One divisible-load application per cluster, with priorities.
    #    pi_k = 2 means one unit of A_k's work is worth two units of a
    #    payoff-1 application; pi_k = 0 opts the cluster out.
    # ------------------------------------------------------------------
    payoffs = [2.0, 1.0, 1.0, 0.5, 1.0, 0.0]
    problem = SteadyStateProblem(platform, payoffs, objective=MAXMIN)
    print(problem)
    print()

    # ------------------------------------------------------------------
    # 3. Solve through the facade: LPRG = rational LP, round down,
    #    greedy top-up. The config validates every option up front; a
    #    typo'd option name would raise with a did-you-mean suggestion
    #    instead of being silently ignored.
    # ------------------------------------------------------------------
    lprg_info = method_info()["lprg"]
    print(f"method: lprg — {lprg_info.description}")
    solver = Solver(SolverConfig(method="lprg"))
    report = solver.solve(problem)
    alloc = report.allocation
    validate_allocation(platform, alloc)  # Equations (1)-(4) hold
    print(f"LPRG objective (MAXMIN of pi_k * alpha_k): {report.value:.2f}")
    print(f"runtime: {report.runtime * 1e3:.1f} ms, LP solves: {report.n_lp_solves}")
    print(alloc.describe(payoffs))
    print()

    # How far from the (unreachable) LP upper bound are we?
    bound = Solver(SolverConfig(method="lp")).solve(problem)
    print(f"LP upper bound: {bound.value:.2f} -> LPRG at "
          f"{100 * report.value / bound.value:.1f}% of the bound")
    print()

    # ------------------------------------------------------------------
    # 4. Reconstruct the compact periodic schedule (Section 3.2).
    # ------------------------------------------------------------------
    schedule = build_periodic_schedule(platform, alloc, denominator=1000)
    print(schedule.describe())
    print()
    throughputs = schedule.throughputs
    for k, app in enumerate(problem.applications):
        print(
            f"  {app.name}: {throughputs[k]:8.2f} load units/time unit "
            f"(payoff {app.payoff:g})"
        )


if __name__ == "__main__":
    main()
