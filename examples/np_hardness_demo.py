#!/usr/bin/env python
"""The NP-completeness reduction of Section 4, end to end.

Takes a small graph, builds the paper's Figure-4 platform (shared
max-connect-1 backbone links encode the edges), and shows that solving
the scheduling problem exactly *is* solving MAXIMUM-INDEPENDENT-SET:
the optimal throughput equals the maximum independent set size, and the
clusters that receive work form that independent set.

Run:  python examples/np_hardness_demo.py
"""

from repro import solve
from repro.complexity import (
    allocation_from_independent_set,
    exact_max_independent_set,
    greedy_independent_set,
    independent_set_from_allocation,
    reduce_mis_to_scheduling,
    verify_lemma1,
)


def main() -> None:
    # A 6-vertex graph: a pentagon with a chord and a pendant vertex.
    n = 6
    edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3), (4, 5)]
    print(f"graph: {n} vertices, edges = {edges}")

    mis = exact_max_independent_set(n, edges)
    print(f"maximum independent set (exact solver): {sorted(mis)} (size {len(mis)})")
    greedy = greedy_independent_set(n, edges)
    print(f"greedy MIS approximation:               {sorted(greedy)} (size {len(greedy)})")
    print()

    # ------------------------------------------------------------------
    # Build instance I2 (Figure 4 of the paper).
    # ------------------------------------------------------------------
    inst = reduce_mis_to_scheduling(n, edges, bound=len(mis))
    platform = inst.platform
    print(
        f"reduced platform: {platform.n_clusters} clusters, "
        f"{len(platform.routers)} routers, {len(platform.links)} unit links"
    )
    print(f"Lemma 1 (routes share a link iff vertices adjacent): {verify_lemma1(inst)}")
    for i in (0, 1):
        route = platform.route(0, i + 1)
        print(f"  route C0 -> C{i + 1}: {' -> '.join(route.links)}")
    print()

    # ------------------------------------------------------------------
    # Solving the scheduling instance exactly solves the MIS instance.
    # ------------------------------------------------------------------
    result = solve(inst.problem(), method="milp")
    print(f"exact scheduling optimum (throughput of A_0): {result.value:.3f}")
    print(f"maximum independent set size:                 {len(mis)}")
    recovered = independent_set_from_allocation(inst, result.allocation)
    print(f"vertices recovered from the optimal schedule: {sorted(recovered)}")
    assert abs(result.value - len(mis)) < 1e-6
    print()

    # Forward direction too: an independent set IS a valid schedule.
    alloc = allocation_from_independent_set(inst, mis)
    print(
        "allocation built from the independent set achieves throughput "
        f"{alloc.maxmin_value(inst.payoffs):.3f}"
    )

    # And the polynomial heuristics? The greedy G effectively computes a
    # maximal independent set — good, but not always maximum:
    g = solve(inst.problem(), method="greedy")
    print(f"greedy heuristic G achieves:                  {g.value:.3f}")
    print()
    print("This is Theorem 1 in executable form: optimizing steady-state")
    print("throughput on this platform family is exactly MAX-INDEPENDENT-SET,")
    print("so no polynomial heuristic can be optimal everywhere (P != NP).")


if __name__ == "__main__":
    main()
