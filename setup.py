"""Setup shim: lets legacy tooling (and offline environments without the
``wheel`` package) install the project; configuration lives in
pyproject.toml."""

from setuptools import setup

setup()
