"""Unit tests of the streaming-aggregation accumulator algebra.

Three laws are pinned here, per reducer and for the composite
:class:`~repro.parallel.stream.SweepAccumulator`:

* **merge associativity** — ``(a + b) + c`` equals ``a + (b + c)``:
  exactly for the integer/extrema reducers, to tight tolerance for the
  Welford moments (float merge order rounds differently);
* **identity** — merging with an empty accumulator is an exact bitwise
  no-op, in both directions (the property that makes empty chunks
  harmless);
* **numerical agreement** — Welford one-pass mean/variance matches
  numpy's two-pass reference to tight relative tolerance.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel.stream import (
    CountAccumulator,
    MeanVarAccumulator,
    MinMaxAccumulator,
    PairRatioAccumulator,
    QuantileAccumulator,
    RatioBoundAccumulator,
    StatAccumulator,
    SweepAccumulator,
    iter_task_groups,
)
from repro.util.errors import SolverError

floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
float_lists = st.lists(floats, max_size=30)


def welford_of(xs) -> MeanVarAccumulator:
    acc = MeanVarAccumulator()
    for x in xs:
        acc.update(x)
    return acc


def assert_states_equal(a, b):
    """Bitwise equality of two accumulators via their state dicts."""
    assert a.state_dict() == b.state_dict()


class TestMeanVar:
    @given(xs=st.lists(floats, min_size=1, max_size=200))
    def test_agrees_with_numpy_two_pass(self, xs):
        acc = welford_of(xs)
        ref = np.asarray(xs, dtype=float)
        scale = max(1.0, float(np.max(np.abs(ref))))
        assert acc.count == len(xs)
        assert acc.mean == pytest.approx(float(ref.mean()), rel=1e-12, abs=1e-12 * scale)
        assert acc.variance == pytest.approx(
            float(ref.var()), rel=1e-9, abs=1e-9 * scale * scale
        )

    @given(a=float_lists, b=float_lists, c=float_lists)
    def test_merge_associative(self, a, b, c):
        left = welford_of(a)
        left.merge(welford_of(b))
        left.merge(welford_of(c))
        bc = welford_of(b)
        bc.merge(welford_of(c))
        right = welford_of(a)
        right.merge(bc)
        assert left.count == right.count
        scale = max(1.0, abs(left.mean), abs(right.mean))
        assert left.mean == pytest.approx(right.mean, rel=1e-9, abs=1e-9 * scale)
        assert left.m2 == pytest.approx(right.m2, rel=1e-6, abs=1e-6 * scale**2)

    @given(xs=float_lists)
    def test_empty_is_exact_identity_both_sides(self, xs):
        full = welford_of(xs)
        left = welford_of(xs)
        left.merge(MeanVarAccumulator())
        assert_states_equal(left, full)
        right = MeanVarAccumulator()
        right.merge(full)
        assert_states_equal(right, full)

    @given(a=float_lists, b=float_lists)
    def test_merge_matches_concatenation(self, a, b):
        merged = welford_of(a)
        merged.merge(welford_of(b))
        ref = np.asarray(a + b, dtype=float)
        assert merged.count == len(ref)
        if len(ref):
            scale = max(1.0, float(np.max(np.abs(ref))))
            assert merged.mean == pytest.approx(
                float(ref.mean()), rel=1e-10, abs=1e-10 * scale
            )
            assert merged.variance == pytest.approx(
                float(ref.var()), rel=1e-8, abs=1e-8 * scale * scale
            )

    def test_empty_statistics_are_nan(self):
        acc = MeanVarAccumulator()
        assert math.isnan(acc.mean_or_nan()) and math.isnan(acc.variance)

    @given(xs=float_lists)
    def test_state_round_trips_bitwise_through_json(self, xs):
        acc = welford_of(xs)
        restored = MeanVarAccumulator.from_state(
            json.loads(json.dumps(acc.state_dict()))
        )
        assert_states_equal(restored, acc)


class TestSimpleReducers:
    @given(a=float_lists, b=float_lists, c=float_lists)
    def test_minmax_merge_associative_and_exact(self, a, b, c):
        def mm(xs):
            acc = MinMaxAccumulator()
            for x in xs:
                acc.update(x)
            return acc

        left = mm(a)
        left.merge(mm(b))
        left.merge(mm(c))
        bc = mm(b)
        bc.merge(mm(c))
        right = mm(a)
        right.merge(bc)
        assert_states_equal(left, right)
        assert_states_equal(left, mm(a + b + c))

    def test_minmax_identity(self):
        acc = MinMaxAccumulator()
        acc.update(3.0)
        acc.merge(MinMaxAccumulator())
        assert (acc.vmin, acc.vmax) == (3.0, 3.0)
        assert MinMaxAccumulator().state_dict() == {
            "vmin": math.inf,
            "vmax": -math.inf,
        }

    @given(
        hits=st.lists(st.booleans(), max_size=40),
        split=st.integers(min_value=0, max_value=40),
    )
    def test_count_merge_is_exact_addition(self, hits, split):
        split = min(split, len(hits))

        def count(bs):
            acc = CountAccumulator()
            for b in bs:
                acc.update(b)
            return acc

        merged = count(hits[:split])
        merged.merge(count(hits[split:]))
        whole = count(hits)
        assert (merged.total, merged.hits) == (whole.total, whole.hits)

    def test_count_fraction(self):
        acc = CountAccumulator()
        assert math.isnan(acc.fraction)
        for hit in (True, False, False, True):
            acc.update(hit)
        assert acc.fraction == 0.5

    def test_stat_accumulator_composes(self):
        acc = StatAccumulator()
        for x in (1.0, 5.0, 3.0):
            acc.update(x)
        assert acc.count == 3
        assert acc.mean == pytest.approx(3.0)
        assert (acc.extrema.vmin, acc.extrema.vmax) == (1.0, 5.0)
        restored = StatAccumulator.from_state(acc.state_dict())
        assert_states_equal(restored, acc)


class TestRatioReducers:
    def test_ratio_bound_tracks_zero_fraction(self):
        acc = RatioBoundAccumulator()
        acc.update(0.5, value=10.0)
        acc.update(0.0, value=0.0)
        acc.update(1.0, value=5.0)
        acc.update(0.0, value=1e-12)  # below ZERO_TOL counts as zero
        stats = acc.stats()
        assert stats["zero_fraction"] == 0.5
        assert stats["mean_ratio"] == pytest.approx(0.375)

    def test_pair_ratio_mirrors_pairwise_value_ratio_semantics(self):
        acc = PairRatioAccumulator()
        acc.update(4.0, 2.0)   # finite ratio 2.0
        acc.update(0.0, 0.0)   # 0/0 -> skipped entirely
        acc.update(3.0, 0.0)   # inf -> excluded from mean, counted
        acc.update(1.0, 2.0)   # finite ratio 0.5
        assert acc.infinities == 1
        assert acc.finite.count == 2
        assert acc.mean == pytest.approx(1.25)

    def test_pair_ratio_empty_mean_is_nan(self):
        assert math.isnan(PairRatioAccumulator().mean)

    def test_merge_identity_exact(self):
        acc = PairRatioAccumulator()
        acc.update(4.0, 2.0)
        before = acc.state_dict()
        acc.merge(PairRatioAccumulator())
        assert acc.state_dict() == before


class TestQuantileSketch:
    """The fixed-bin quantile sketch: exact counts, deterministic reads."""

    ratio_floats = st.floats(
        min_value=0.0, max_value=1.5, allow_nan=False, allow_infinity=False
    )

    def sketch_of(self, xs) -> QuantileAccumulator:
        acc = QuantileAccumulator()
        for x in xs:
            acc.update(x)
        return acc

    @given(a=st.lists(ratio_floats), b=st.lists(ratio_floats),
           c=st.lists(ratio_floats))
    def test_merge_is_exactly_associative_and_order_free(self, a, b, c):
        left = self.sketch_of(a)
        left.merge(self.sketch_of(b))
        left.merge(self.sketch_of(c))
        bc = self.sketch_of(b)
        bc.merge(self.sketch_of(c))
        right = self.sketch_of(a)
        right.merge(bc)
        assert left.state_dict() == right.state_dict()
        assert left.state_dict() == self.sketch_of(a + b + c).state_dict()

    @given(xs=st.lists(ratio_floats, min_size=1, max_size=200),
           q=st.sampled_from([0.0, 0.25, 0.5, 0.95, 1.0]))
    def test_quantile_within_bin_resolution_of_sorted_reference(self, xs, q):
        acc = self.sketch_of(xs)
        rank = max(1, math.ceil(q * len(xs)))
        exact = sorted(xs)[rank - 1]
        width = (acc.hi - acc.lo) / acc.n_bins
        assert abs(acc.quantile(q) - exact) <= width

    def test_out_of_range_and_nan_handling(self):
        acc = QuantileAccumulator(lo=0.0, hi=1.0, n_bins=10)
        for x in (-5.0, 0.5, 2.0, math.inf, math.nan):
            acc.update(x)
        assert (acc.n_under, acc.n_over, acc.n_nan) == (1, 2, 1)
        assert acc.count == 4  # NaN excluded from ranking
        assert acc.quantile(0.0) == 0.0   # clamped to lo
        assert acc.quantile(1.0) == 1.0   # clamped to hi

    def test_empty_quantiles_are_nan(self):
        assert math.isnan(QuantileAccumulator().median())

    def test_invalid_quantile_and_mismatched_merge_refused(self):
        acc = QuantileAccumulator()
        with pytest.raises(SolverError, match="quantile"):
            acc.quantile(1.5)
        with pytest.raises(SolverError, match="different bins"):
            acc.merge(QuantileAccumulator(n_bins=8))
        with pytest.raises(SolverError, match="lo < hi"):
            QuantileAccumulator(lo=1.0, hi=1.0)

    @given(xs=st.lists(ratio_floats, max_size=50))
    def test_state_round_trips_bitwise_through_json(self, xs):
        acc = self.sketch_of(xs)
        restored = QuantileAccumulator.from_state(
            json.loads(json.dumps(acc.state_dict()))
        )
        assert restored.state_dict() == acc.state_dict()

    def test_ratio_bound_exposes_median_and_p95(self):
        acc = RatioBoundAccumulator()
        for ratio in (0.1, 0.5, 0.9, 0.95, 1.0):
            acc.update(ratio, value=ratio)
        stats = acc.stats()
        width = 2.0 / 256
        assert abs(stats["median_ratio"] - 0.9) <= width
        assert abs(stats["p95_ratio"] - 1.0) <= width


def _fake_row(setting, replicate, objective, method, value, lp_value,
              runtime=0.25, n_lp_solves=1):
    from repro.experiments.runner import ExperimentRow

    return ExperimentRow(
        setting=setting, replicate=replicate, objective=objective,
        method=method, value=value, lp_value=lp_value, runtime=runtime,
        n_lp_solves=n_lp_solves,
    )


def _fake_task(setting, replicate, methods=("greedy", "lprg"),
               objectives=("sum",), base=100.0):
    """One replicate's row list, shaped exactly like run_replicate's."""
    rows = []
    for oi, objective in enumerate(objectives):
        lp = base + 10.0 * oi
        rows.append(_fake_row(setting, replicate, objective, "lp", lp, lp))
        for mi, method in enumerate(methods):
            rows.append(
                _fake_row(setting, replicate, objective, method,
                          lp * (0.5 + 0.1 * mi), lp)
            )
    return rows


@pytest.fixture
def settings_pair():
    from repro.experiments import sample_settings

    return sample_settings(2, rng=0, k_values=[4, 6])


class TestSweepAccumulator:
    def test_matches_classic_aggregates_to_tolerance(self, settings_pair):
        """Welford tables vs the np.mean reference on real sweep rows."""
        from repro.experiments import run_sweep
        from repro.experiments.aggregate import (
            headline_ratios,
            lpr_failure_stats,
            mean_ratio_by_k,
            runtime_by_k,
        )

        methods, objectives = ("greedy", "lpr", "lprg"), ("maxmin", "sum")
        rows = run_sweep(
            settings_pair, methods=methods, objectives=objectives,
            n_platforms=2, rng=3,
        )
        agg = SweepAccumulator.from_rows(
            rows, methods=methods, objectives=objectives
        )
        for method in methods:
            for objective in objectives:
                classic = mean_ratio_by_k(rows, method, objective)
                streamed = agg.mean_ratio_by_k(method, objective)
                assert [k for k, _ in classic] == [k for k, _ in streamed]
                assert [v for _, v in streamed] == pytest.approx(
                    [v for _, v in classic], rel=1e-12
                )
                classic_rt = runtime_by_k(rows, method, objective)
                streamed_rt = agg.runtime_by_k(method, objective)
                assert [v for _, v in streamed_rt] == pytest.approx(
                    [v for _, v in classic_rt], rel=1e-12
                )
        classic_head = headline_ratios(rows)
        streamed_head = agg.headline_ratios()
        for objective in ("maxmin", "sum"):
            assert streamed_head[objective] == pytest.approx(
                classic_head[objective], rel=1e-12
            )
        classic_fail = lpr_failure_stats(rows)
        streamed_fail = agg.lpr_failure_stats()
        assert streamed_fail["mean_ratio"] == pytest.approx(
            classic_fail["mean_ratio"], rel=1e-12
        )
        assert streamed_fail["zero_fraction"] == classic_fail["zero_fraction"]

    def test_merge_equals_sequential_fold(self, settings_pair):
        tasks = [
            _fake_task(s, rep, base=100.0 + 7 * i)
            for i, s in enumerate(settings_pair)
            for rep in range(3)
        ]
        whole = SweepAccumulator()
        for task in tasks:
            whole.fold_task(task)
        left = SweepAccumulator()
        for task in tasks[:2]:
            left.fold_task(task)
        right = SweepAccumulator()
        for task in tasks[2:]:
            right.fold_task(task)
        left.merge(right)
        assert left.n_rows == whole.n_rows
        assert left.n_tasks == whole.n_tasks
        lt, wt = left.tables(), whole.tables()
        assert lt["mean_ratio_by_k"].keys() == wt["mean_ratio_by_k"].keys()
        for key in wt["mean_ratio_by_k"]:
            for (k1, v1), (k2, v2) in zip(
                lt["mean_ratio_by_k"][key], wt["mean_ratio_by_k"][key]
            ):
                assert k1 == k2 and v1 == pytest.approx(v2, rel=1e-12)

    def test_merge_with_empty_is_exact_identity(self, settings_pair):
        agg = SweepAccumulator()
        agg.fold_task(_fake_task(settings_pair[0], 0))
        before = agg.state_dict()
        agg.merge(SweepAccumulator())
        assert agg.state_dict() == before
        fresh = SweepAccumulator()
        fresh.merge(agg)
        assert fresh.state_dict() == before

    def test_state_round_trips_bitwise(self, settings_pair):
        agg = SweepAccumulator()
        for rep in range(2):
            agg.fold_task(_fake_task(settings_pair[0], rep))
        restored = SweepAccumulator.from_state(
            json.loads(json.dumps(agg.state_dict()))
        )
        assert restored.state_dict() == agg.state_dict()
        assert restored.tables() == agg.tables()

    def test_state_version_guard(self):
        state = SweepAccumulator().state_dict()
        state["version"] = 999
        with pytest.raises(SolverError, match="state version"):
            SweepAccumulator.from_state(state)

    def test_untracked_pair_is_refused(self, settings_pair):
        agg = SweepAccumulator()
        agg.fold_task(_fake_task(settings_pair[0], 0))
        with pytest.raises(SolverError, match="not tracked"):
            agg.pairwise_value_ratio("lpr", "greedy", "sum")

    def test_missing_method_gives_nan_failure_stats(self):
        """The absent-method read-out carries the same keys (all NaN) as
        a populated one — and as the classic aggregate function."""
        from repro.experiments.aggregate import lpr_failure_stats

        stats = SweepAccumulator().method_failure_stats("lpr")
        populated = RatioBoundAccumulator()
        populated.update(0.5, value=1.0)
        assert stats.keys() == populated.stats().keys()
        assert stats.keys() == lpr_failure_stats([]).keys()
        for value in stats.values():
            assert math.isnan(value)


class TestTaskGrouping:
    def test_arithmetic_chunking_checks_divisibility(self, settings_pair):
        rows = _fake_task(settings_pair[0], 0)
        with pytest.raises(SolverError, match="not a multiple"):
            list(iter_task_groups(rows, methods=("a", "b", "c"),
                                  objectives=("sum", "maxmin")))

    def test_boundary_detection_matches_arithmetic(self, settings_pair):
        methods, objectives = ("greedy", "lprg"), ("maxmin", "sum")
        tasks = [
            _fake_task(s, rep, methods=methods, objectives=objectives)
            for s in settings_pair
            for rep in range(2)
        ]
        flat = [row for task in tasks for row in task]
        by_marker = list(iter_task_groups(flat))
        by_arith = list(
            iter_task_groups(flat, methods=methods, objectives=objectives)
        )
        assert by_marker == by_arith == tasks

    def test_empty_rows_yield_nothing(self):
        assert list(iter_task_groups([])) == []
