"""Library-logging hygiene and the relocated timing helpers."""

import logging
import warnings

from repro.obs.logging import get_logger, package_logger
from repro.obs.timing import Timer, timed


class TestLoggingHygiene:
    def test_package_root_has_a_null_handler(self):
        import repro  # noqa: F401 - importing the package installs it

        assert any(
            isinstance(h, logging.NullHandler)
            for h in logging.getLogger("repro").handlers
        )

    def test_process_root_logger_is_untouched(self):
        import importlib

        import repro
        import repro.obs.logging

        before = list(logging.getLogger().handlers)
        importlib.reload(repro.obs.logging)
        assert list(logging.getLogger().handlers) == before
        # and reimporting does not stack a second NullHandler
        null_handlers = [
            h for h in logging.getLogger("repro").handlers
            if isinstance(h, logging.NullHandler)
        ]
        assert len(null_handlers) == 1

    def test_get_logger_namespaces_under_repro(self):
        assert get_logger("repro.lp.session").name == "repro.lp.session"
        assert get_logger("service").name == "repro.service"
        assert get_logger("repro") is package_logger

    def test_checkpoint_warnings_also_reach_the_package_logger(self, tmp_path):
        """The duplicated-warning satellite: CheckpointWarning sites log
        through ``repro.parallel.checkpoint`` as well as ``warnings``."""
        from repro.parallel.checkpoint import CampaignCheckpoint

        path = tmp_path / "c.ckpt"
        with CampaignCheckpoint(path, fingerprint="fp") as store:
            store.record("t0", 1)
            store.record("t1", 2)
        # truncate mid-record to force the torn-tail warning on resume
        text = path.read_text()
        path.write_text(text[: len(text) - 8])
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        logger = logging.getLogger("repro.parallel.checkpoint")
        handler = Capture()
        logger.addHandler(handler)
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                CampaignCheckpoint(path, fingerprint="fp", resume=True).close()
        finally:
            logger.removeHandler(handler)
        assert caught, "expected a CheckpointWarning"
        assert records, "expected the same message on the package logger"
        assert str(caught[0].message) == records[0].getMessage()


class TestTimingShim:
    def test_util_timing_reexports_obs_timing(self):
        from repro.obs import timing as obs_timing
        from repro.util import timing as util_timing

        assert util_timing.Timer is obs_timing.Timer
        assert util_timing.timed is obs_timing.timed
        assert util_timing.__all__ == ["Timer", "timed"]

    def test_timer_accumulates_laps(self):
        timer = Timer()
        with timer.measure():
            pass
        with timer.measure():
            pass
        assert timer.count == 2
        assert len(timer.laps) == 2
        assert timer.total >= 0.0
        assert timer.mean == timer.total / 2
        timer.reset()
        assert (timer.total, timer.count, timer.laps) == (0.0, 0, [])

    def test_timed_accumulates_into_sink(self):
        sink: dict = {}
        with timed(sink, "step"):
            pass
        first = sink["step"]
        with timed(sink, "step"):
            pass
        assert sink["step"] >= first >= 0.0
