"""Tests for repro.simulation.trace and its engine integration."""

import numpy as np
import pytest

from repro import solve
from repro.schedule import build_periodic_schedule
from repro.simulation import FlowSimulator, TraceRecorder


@pytest.fixture
def traced_run(problem_factory):
    problem = problem_factory(seed=1, n_clusters=5)
    result = solve(problem, "lprg")
    schedule = build_periodic_schedule(
        problem.platform, result.allocation, denominator=200
    )
    trace = TraceRecorder()
    sim = FlowSimulator(problem.platform, trace=trace)
    out = sim.run(schedule, n_periods=6)
    return problem, schedule, trace, out


class TestTraceRecorder:
    def test_records_period_starts(self, traced_run):
        _, _, trace, _ = traced_run
        starts = trace.events_of_kind("period_start")
        assert [e.data["index"] for e in starts] == list(range(6))

    def test_flow_start_end_balance(self, traced_run):
        _, schedule, trace, out = traced_run
        n_starts = len(trace.events_of_kind("flow_start"))
        n_ends = len(trace.events_of_kind("flow_end"))
        assert n_starts == n_ends  # every launched transfer completed
        remote_pairs = int(np.count_nonzero(
            schedule.loads - np.diag(np.diag(schedule.loads))
        ))
        assert n_starts == remote_pairs * 5  # 5 communicating periods

    def test_compute_totals_match_result(self, traced_run):
        _, _, trace, out = traced_run
        assert sum(trace.compute_units.values()) == pytest.approx(
            float(out.completed.sum())
        )

    def test_transfer_totals_match_schedule(self, traced_run):
        _, schedule, trace, _ = traced_run
        remote = schedule.loads.sum() - np.trace(schedule.loads)
        # Each transferred unit is charged to both endpoints, 5 periods.
        assert sum(trace.link_bytes.values()) == pytest.approx(2 * remote * 5, rel=1e-9)

    def test_utilizations_bounded(self, traced_run):
        problem, _, trace, out = traced_run
        platform = problem.platform
        for k, cluster in enumerate(platform.clusters):
            cu = trace.compute_utilization(k, cluster.speed, horizon=out.elapsed)
            lu = trace.link_utilization(k, cluster.g, horizon=out.elapsed)
            assert 0.0 <= cu <= 1.0 + 1e-9
            assert 0.0 <= lu <= 1.0 + 1e-9

    def test_zero_horizon_and_capacity(self):
        trace = TraceRecorder()
        assert trace.link_utilization(0, 10.0) == 0.0
        assert trace.compute_utilization(0, 0.0, horizon=5.0) == 0.0

    def test_len_counts_events(self, traced_run):
        _, _, trace, _ = traced_run
        assert len(trace) == len(trace.events)
