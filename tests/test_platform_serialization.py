"""Tests for repro.platform.serialization."""

import numpy as np
import pytest
from hypothesis import given

from repro import PlatformSpec, generate_platform, load_platform, save_platform
from repro.complexity import reduce_mis_to_scheduling
from repro.platform.serialization import platform_from_dict, platform_to_dict
from repro.util.errors import PlatformError

from tests.strategies import platform_specs


def _roundtrip(platform):
    return platform_from_dict(platform_to_dict(platform))


def _assert_same(a, b):
    assert a.n_clusters == b.n_clusters
    assert np.array_equal(a.speeds, b.speeds)
    assert np.array_equal(a.local_capacities, b.local_capacities)
    assert a.routers == b.routers
    assert sorted(a.links) == sorted(b.links)
    for name in a.links:
        assert a.links[name].bw == b.links[name].bw
        assert a.links[name].max_connect == b.links[name].max_connect
    assert a.routed_pairs() == b.routed_pairs()
    for pair in a.routed_pairs():
        assert a.route(*pair).links == b.route(*pair).links


class TestRoundTrip:
    def test_random_platform(self):
        spec = PlatformSpec(
            n_clusters=6, connectivity=0.5, heterogeneity=0.4,
            mean_g=200, mean_bw=30, mean_max_connect=8,
        )
        platform = generate_platform(spec, rng=4)
        _assert_same(platform, _roundtrip(platform))

    def test_pinned_routes_survive(self):
        # The reduction uses explicit routes that shortest-path routing
        # would NOT reproduce; serialization must preserve them.
        inst = reduce_mis_to_scheduling(4, [(0, 1), (1, 2), (2, 3)], bound=2)
        clone = _roundtrip(inst.platform)
        _assert_same(inst.platform, clone)

    @given(platform_specs(max_clusters=5))
    def test_any_generated_platform(self, spec):
        platform = generate_platform(spec, rng=1)
        _assert_same(platform, _roundtrip(platform))

    def test_file_roundtrip(self, tmp_path):
        platform = generate_platform(
            PlatformSpec(
                n_clusters=4, connectivity=0.7, heterogeneity=0.2,
                mean_g=100, mean_bw=20, mean_max_connect=5,
            ),
            rng=2,
        )
        path = tmp_path / "platform.json"
        save_platform(platform, path)
        _assert_same(platform, load_platform(path))

    def test_unknown_version_rejected(self):
        with pytest.raises(PlatformError):
            platform_from_dict({"format_version": 99})

    def test_routes_optional(self):
        platform = generate_platform(
            PlatformSpec(
                n_clusters=3, connectivity=1.0, heterogeneity=0.0,
                mean_g=100, mean_bw=20, mean_max_connect=5,
            ),
            rng=0,
        )
        data = platform_to_dict(platform, include_routes=False)
        assert "routes" not in data
        clone = platform_from_dict(data)  # recomputed routing
        _assert_same(platform, clone)
