"""Tests for the solve() façade, heuristic base plumbing, and errors."""

import numpy as np
import pytest

from repro import ReproError, SteadyStateProblem, ValidationError, line_platform, solve
from repro.core.solve import available_methods
from repro.heuristics.base import Heuristic, HeuristicResult, get_heuristic
from repro.util.errors import (
    InfeasibleError,
    PlatformError,
    RoutingError,
    ScheduleError,
    SimulationError,
    SolverError,
    UnboundedError,
)


class TestSolveFacade:
    def test_available_methods(self):
        methods = available_methods()
        assert "lprg" in methods and "milp" in methods
        assert methods == tuple(sorted(methods))

    def test_unknown_method(self, problem_factory):
        with pytest.raises(ValueError):
            solve(problem_factory(), method="quantum-annealing")

    def test_case_insensitive(self, problem_factory):
        problem = problem_factory(seed=0, n_clusters=3)
        assert solve(problem, "LPRG").method == "lprg"

    def test_runtime_recorded(self, problem_factory):
        result = solve(problem_factory(seed=0, n_clusters=4), "lprg")
        assert result.runtime > 0.0

    def test_kwargs_forwarded(self, problem_factory):
        problem = problem_factory(seed=0, n_clusters=4)
        result = solve(problem, "lprr", rng=0, eager_integer_fixing=True)
        assert result.allocation is not None

    def test_result_repr(self, problem_factory):
        result = solve(problem_factory(seed=0, n_clusters=3), "greedy")
        assert "greedy" in repr(result)
        assert result.is_schedule


class TestHeuristicBase:
    def test_duplicate_registration_rejected(self):
        from repro.heuristics.base import register_heuristic

        class Dup(Heuristic):
            name = "greedy"  # already taken

        with pytest.raises(ValueError):
            register_heuristic(Dup)

    def test_abstract_solve(self, problem_factory):
        h = Heuristic()
        with pytest.raises(NotImplementedError):
            h.run(problem_factory(seed=0, n_clusters=2))

    def test_heuristic_repr(self):
        assert "greedy" in repr(get_heuristic("greedy"))

    def test_lp_bound_is_not_schedule_in_general(self, problem_factory):
        # On most random platforms the relaxation is fractional, but if
        # it happens to be integral an allocation IS attached; either
        # way, the flag and the field must agree.
        result = solve(problem_factory(seed=0, n_clusters=5), "lp")
        assert result.is_schedule == (result.allocation is not None)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            PlatformError, RoutingError, SolverError, InfeasibleError,
            UnboundedError, ScheduleError, SimulationError,
        ):
            assert issubclass(exc, ReproError)
        assert issubclass(RoutingError, PlatformError)
        assert issubclass(InfeasibleError, SolverError)

    def test_validation_error_summary_truncates(self):
        err = ValidationError([f"violation {i}" for i in range(10)])
        assert "+5 more" in str(err)
        assert len(err.violations) == 10

    def test_validation_error_short_list(self):
        err = ValidationError(["just one"])
        assert "just one" in str(err)
        assert "more" not in str(err)

    def test_catch_all(self, problem_factory):
        # A single except ReproError catches solver-level failures.
        from repro.lp.builder import build_lp
        from repro.lp.scipy_backend import solve_lp_scipy

        problem = problem_factory(seed=0, n_clusters=2)
        inst = build_lp(problem)
        lb, ub = inst.lb.copy(), inst.ub.copy()
        lb[0], ub[0] = 1e12, 2e12
        with pytest.raises(ReproError):
            solve_lp_scipy(inst.with_bounds(lb, ub))
