"""Tests for the classical divisible-load-theory substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dlt import (
    StarNetwork,
    multi_round_makespan,
    single_round_makespan,
    steady_state_throughput_multi_port,
    steady_state_throughput_one_port,
)
from repro.platform.cluster import equivalent_star_speed
from repro.util.errors import PlatformError


def _star(master=0.0, speeds=(2.0, 1.0), bws=(4.0, 2.0)):
    return StarNetwork(master, tuple(speeds), tuple(bws))


class TestConstruction:
    def test_length_mismatch(self):
        with pytest.raises(PlatformError):
            StarNetwork(1.0, (1.0,), ())

    def test_nonpositive_worker_rejected(self):
        with pytest.raises(PlatformError):
            StarNetwork(1.0, (0.0,), (1.0,))
        with pytest.raises(PlatformError):
            StarNetwork(1.0, (1.0,), (0.0,))


class TestSingleRound:
    def test_zero_load(self):
        T, chunks = single_round_makespan(_star(), 0.0)
        assert T == 0.0 and chunks.sum() == 0.0

    def test_chunks_sum_to_load(self):
        T, chunks = single_round_makespan(_star(master=1.0), 30.0)
        assert chunks.sum() == pytest.approx(30.0)

    def test_all_finish_simultaneously(self):
        """The optimality condition: every participant finishes at T."""
        star = _star(master=1.5, speeds=(2.0, 1.0, 3.0), bws=(4.0, 2.0, 1.0))
        order = [0, 1, 2]
        T, chunks = single_round_makespan(star, 50.0, order=order)
        # master
        assert chunks[0] / star.master_speed == pytest.approx(T)
        # worker i finishes at (send completion) + compute time
        t = 0.0
        for i in order:
            t += chunks[1 + i] / star.worker_bandwidths[i]
            finish = t + chunks[1 + i] / star.worker_speeds[i]
            assert finish == pytest.approx(T)

    def test_makespan_linear_in_load(self):
        star = _star()
        T1, _ = single_round_makespan(star, 10.0)
        T2, _ = single_round_makespan(star, 20.0)
        assert T2 == pytest.approx(2 * T1)

    def test_bad_order_rejected(self):
        with pytest.raises(PlatformError):
            single_round_makespan(_star(), 1.0, order=[0, 0])

    def test_negative_load_rejected(self):
        with pytest.raises(PlatformError):
            single_round_makespan(_star(), -1.0)

    def test_bandwidth_order_is_good(self):
        """Decreasing-bandwidth order beats (or ties) the reverse order."""
        star = _star(speeds=(5.0, 5.0), bws=(10.0, 1.0))
        T_good, _ = single_round_makespan(star, 40.0, order=[0, 1])
        T_bad, _ = single_round_makespan(star, 40.0, order=[1, 0])
        assert T_good <= T_bad + 1e-12


class TestMultiRound:
    def test_one_round_matches_single(self):
        star = _star(master=1.0)
        T1, _ = single_round_makespan(star, 25.0)
        assert multi_round_makespan(star, 25.0, rounds=1) == pytest.approx(T1)

    def test_more_rounds_help_large_loads(self):
        star = _star(speeds=(2.0, 2.0), bws=(1.0, 1.0))
        W = 200.0
        T1 = multi_round_makespan(star, W, rounds=1)
        T8 = multi_round_makespan(star, W, rounds=8)
        assert T8 < T1

    def test_rounds_validation(self):
        with pytest.raises(PlatformError):
            multi_round_makespan(_star(), 1.0, rounds=0)

    def test_zero_load(self):
        assert multi_round_makespan(_star(), 0.0, rounds=3) == 0.0


class TestSteadyState:
    def test_multi_port_matches_cluster_formula(self):
        star = _star(master=3.0, speeds=(2.0, 9.0), bws=(4.0, 5.0))
        assert steady_state_throughput_multi_port(star) == pytest.approx(
            equivalent_star_speed(3.0, [2.0, 9.0], [4.0, 5.0])
        )

    def test_one_port_bandwidth_centric(self):
        # Banino et al.'s counter-intuitive principle: the FAST worker
        # behind a SLOW link is used only with leftover port time.
        star = StarNetwork(0.0, (1.0, 100.0), (10.0, 1.0))
        # Saturate worker 0 first (bw 10): x0 = 1 costs 0.1 port-time;
        # leftover 0.9 feeds worker 1 at bw 1: x1 = 0.9.
        assert steady_state_throughput_one_port(star) == pytest.approx(1.9)

    def test_one_port_below_multi_port(self):
        star = _star(master=1.0, speeds=(3.0, 4.0, 5.0), bws=(2.0, 3.0, 4.0))
        assert steady_state_throughput_one_port(star) <= (
            steady_state_throughput_multi_port(star) + 1e-12
        )

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25)
    def test_one_port_dominated_random(self, p, seed):
        rng = np.random.default_rng(seed)
        star = StarNetwork(
            float(rng.uniform(0, 5)),
            tuple(rng.uniform(0.5, 10, p)),
            tuple(rng.uniform(0.5, 10, p)),
        )
        one = steady_state_throughput_one_port(star)
        multi = steady_state_throughput_multi_port(star)
        assert star.master_speed - 1e-12 <= one <= multi + 1e-12


class TestAsymptoticOptimality:
    """The theorem the paper's relaxation rests on: makespan-optimal
    throughput tends to the steady-state optimum as the load grows."""

    def test_multi_round_converges_to_one_port_bound(self):
        star = StarNetwork(1.0, (2.0, 3.0), (3.0, 2.0))
        bound = steady_state_throughput_one_port(star)
        last = 0.0
        for W, R in ((10, 2), (100, 10), (1000, 40), (10000, 150)):
            T = multi_round_makespan(
                star, float(W), rounds=R, proportions="steady-state"
            )
            throughput = W / T
            assert throughput <= bound + 1e-9  # never beats steady state
            last = throughput
        assert last >= 0.9 * bound  # within 10% at large load

    def test_steady_state_mix_beats_single_round_mix_eventually(self):
        star = StarNetwork(1.0, (2.0, 3.0), (3.0, 2.0))
        W, R = 10000.0, 150
        uniform = W / multi_round_makespan(star, W, rounds=R)
        steady = W / multi_round_makespan(
            star, W, rounds=R, proportions="steady-state"
        )
        assert steady >= uniform - 1e-9

    def test_unknown_proportions_rejected(self):
        with pytest.raises(PlatformError):
            multi_round_makespan(_star(), 1.0, rounds=2, proportions="magic")

    def test_single_round_strictly_below_bound(self):
        star = StarNetwork(0.0, (5.0, 5.0), (2.0, 2.0))
        bound = steady_state_throughput_one_port(star)
        T, _ = single_round_makespan(star, 100.0)
        assert 100.0 / T < bound
