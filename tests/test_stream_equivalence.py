"""Property-based equivalence of streamed vs in-memory aggregation.

The contract under test (the streaming twin of PR-1's row equivalence):
for ANY execution pattern — worker count, chunking, completion order,
mid-sweep crash + resume — a ``stream=True`` sweep produces aggregate
tables **bitwise-identical** to the in-memory reference fold
(:meth:`SweepAccumulator.from_rows` over the materialised row list).
Wall-clock runtimes are the one sanctioned cross-run difference, so
comparisons against a *separate* run drop the runtime table; synthetic
campaigns carry deterministic fake runtimes and compare every byte.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.experiments import run_sweep, sample_settings
from repro.experiments.aggregate import aggregate_rows
from repro.experiments.persistence import (
    load_rows_csv,
    load_rows_jsonl,
    row_from_dict,
    row_to_dict,
)
from repro.experiments.runner import ExperimentRow
from repro.parallel import (
    CampaignCheckpoint,
    CampaignEngine,
    StreamFold,
    SweepAccumulator,
    open_row_sink,
)
from repro.util.errors import SolverError

from tests.strategies import completion_orders, sweep_shapes
from tests.test_parallel_equivalence import assert_rows_identical

#: deterministic settings pool shared by every synthetic campaign
_SETTINGS = sample_settings(6, rng=2024, k_values=[3, 4, 5])


def synthetic_task_rows(task) -> list:
    """Deterministic fake replicate: run_replicate's row shape, no LP.

    Values (and fake runtimes) are a pure function of the task payload,
    so aggregates over synthetic campaigns are bitwise-comparable across
    runs — including the runtime table. Module-level for pool
    picklability. Occasionally emits zero values and zero LP bounds to
    exercise the inf/zero ratio paths.
    """
    setting_index, replicate, methods, objectives, seed = task
    setting = _SETTINGS[setting_index % len(_SETTINGS)]
    rng = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(setting_index, replicate))
    )
    rows = []
    for objective in objectives:
        lp_value = float(rng.choice([0.0, 50.0, 120.0, 400.0],
                                    p=[0.05, 0.4, 0.4, 0.15]))
        rows.append(
            ExperimentRow(
                setting=setting, replicate=replicate, objective=objective,
                method="lp", value=lp_value, lp_value=lp_value,
                runtime=round(float(rng.uniform(0.001, 0.01)), 6),
                n_lp_solves=1,
            )
        )
        for method in methods:
            value = float(rng.choice([0.0, 0.4, 0.8, 1.1]) * lp_value)
            rows.append(
                ExperimentRow(
                    setting=setting, replicate=replicate,
                    objective=objective, method=method, value=value,
                    lp_value=lp_value,
                    runtime=round(float(rng.uniform(0.001, 0.01)), 6),
                    n_lp_solves=int(rng.integers(1, 5)),
                )
            )
    return rows


def synthetic_tasks(shape: dict) -> list:
    return [
        (i, rep, shape["methods"], shape["objectives"], shape["seed"])
        for i in range(shape["n_settings"])
        for rep in range(shape["n_replicates"])
    ]


def _slow_first_task(arg):
    """Pool worker: the first task stalls until 13 later tasks finished
    (just past the backpressure window) — the reorder-buffer worst case
    the engine's throttle must cap. Progress is counted through a flag
    file because pool workers share no memory; without backpressure the
    engine would keep feeding and the buffer would grow towards
    O(tasks) while the first task waits."""
    import os
    import time

    task, flag = arg
    if task[0] == 0 and task[1] == 0:
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            try:
                done = os.stat(flag).st_size
            except FileNotFoundError:
                done = 0
            if done >= 13:
                break
            time.sleep(0.005)
    else:
        with open(flag, "a") as fh:
            fh.write(".")
    return synthetic_task_rows(task)


def reference_tables(tasks) -> dict:
    agg = SweepAccumulator()
    for task in tasks:
        agg.fold_task(synthetic_task_rows(task))
    return agg.tables()


def dumps(tables: dict) -> str:
    """Bitwise-comparable serialisation (NaN-safe, order-pinned)."""
    return json.dumps(tables, sort_keys=True)


def _row_codec() -> dict:
    """Checkpoint encode/decode for ExperimentRow-list results (what
    ``Solver.sweep`` installs on its own checkpoints)."""
    return dict(
        encode=lambda rows: [row_to_dict(r) for r in rows],
        decode=lambda rows: [row_from_dict(r) for r in rows],
    )


def tables_sans_runtime(agg) -> dict:
    """Aggregate tables without the (wall-clock) runtime series — the
    comparison unit across *separate* real sweep executions."""
    tables = agg.tables()
    tables.pop("runtime_mean_by_k")
    return tables


class TestFoldOrderInvariance:
    """The fold is pinned to task index, not completion order."""

    @hyp_settings(max_examples=40)
    @given(shape=sweep_shapes(), data=st.data())
    def test_any_completion_order_is_bitwise_identical(self, shape, data):
        tasks = synthetic_tasks(shape)
        order = data.draw(completion_orders(len(tasks)))
        fold = StreamFold(SweepAccumulator(), n_tasks=len(tasks))
        for index in order:
            fold.add(index, synthetic_task_rows(tasks[index]))
        assert dumps(fold.finalize().tables()) == dumps(reference_tables(tasks))

    @hyp_settings(max_examples=15)
    @given(shape=sweep_shapes())
    def test_engine_jobs_and_chunking_are_bitwise_identical(self, shape):
        tasks = synthetic_tasks(shape)
        engine = CampaignEngine(
            synthetic_task_rows,
            jobs=shape["jobs"],
            chunk_size=shape["chunk_size"],
        )
        fold = StreamFold(SweepAccumulator(), n_tasks=len(tasks))
        assert engine.run(tasks, consumer=fold) is None
        assert dumps(fold.finalize().tables()) == dumps(reference_tables(tasks))

    def test_slow_task_does_not_grow_the_reorder_buffer(self, tmp_path):
        """One task stalling the fold must throttle the pool: the
        buffer stays O(jobs x chunk_size), never O(tasks)."""
        shape = dict(n_settings=4, n_replicates=16, methods=("greedy",),
                     objectives=("sum",), seed=3)
        tasks = synthetic_tasks(shape)

        class WatchedFold(StreamFold):
            max_buffered = 0

            def add(self, index, result):
                super().add(index, result)
                WatchedFold.max_buffered = max(
                    WatchedFold.max_buffered, len(self.pending)
                )

        jobs, chunk_size = 2, 2
        fold = WatchedFold(SweepAccumulator(), n_tasks=len(tasks))
        engine = CampaignEngine(
            _slow_first_task, jobs=jobs, chunk_size=chunk_size
        )
        engine.run([(t, str(tmp_path / "gate")) for t in tasks],
                   consumer=fold)
        tables = fold.finalize().tables()
        assert dumps(tables) == dumps(reference_tables(tasks))
        window = (jobs * 2 + 2) * chunk_size
        assert WatchedFold.max_buffered <= window + jobs * 2 * chunk_size, (
            f"reorder buffer reached {WatchedFold.max_buffered} tasks "
            f"({len(tasks)} total) despite the backpressure window"
        )

    def test_permanently_lagging_consumer_cannot_deadlock_the_pool(self):
        """The starvation guard: even a consumer that always reports a
        huge backlog must not stop the pool from making progress (one
        chunk at a time when nothing is in flight)."""
        shape = dict(n_settings=2, n_replicates=6, methods=("greedy",),
                     objectives=("sum",), seed=7)
        tasks = synthetic_tasks(shape)

        class AlwaysLagging(StreamFold):
            def buffered_tasks(self):
                return 10_000

        fold = AlwaysLagging(SweepAccumulator(), n_tasks=len(tasks))
        CampaignEngine(synthetic_task_rows, jobs=2, chunk_size=1).run(
            tasks, consumer=fold
        )
        assert dumps(fold.finalize().tables()) == dumps(
            reference_tables(tasks)
        )

    def test_duplicate_delivery_is_rejected(self):
        shape = dict(n_settings=1, n_replicates=2, methods=("greedy",),
                     objectives=("sum",), seed=1)
        tasks = synthetic_tasks(shape)
        fold = StreamFold(SweepAccumulator(), n_tasks=len(tasks))
        fold.add(0, synthetic_task_rows(tasks[0]))
        with pytest.raises(SolverError, match="twice"):
            fold.add(0, synthetic_task_rows(tasks[0]))

    def test_incomplete_fold_is_rejected(self):
        fold = StreamFold(SweepAccumulator(), n_tasks=3)
        fold.add(0, [])
        with pytest.raises(SolverError, match="incomplete"):
            fold.finalize()


class _CrashAfter:
    """Inline worker that raises once N tasks have been computed."""

    def __init__(self, crash_after: "int | None"):
        self.crash_after = crash_after
        self.calls = 0

    def __call__(self, task):
        if self.crash_after is not None and self.calls >= self.crash_after:
            raise RuntimeError("simulated mid-sweep crash")
        self.calls += 1
        return synthetic_task_rows(task)


class TestCrashResume:
    @hyp_settings(max_examples=25)
    @given(
        shape=sweep_shapes(),
        snapshot_every=st.integers(min_value=1, max_value=5),
    )
    def test_crash_and_resume_is_bitwise_identical(
        self, tmp_path_factory, shape, snapshot_every
    ):
        """Kill the campaign after a sampled number of tasks, resume it,
        and require the final aggregate bitwise-equal to an
        uninterrupted run — for any shape and snapshot cadence."""
        tasks = synthetic_tasks(shape)
        task_ids = [f"{t[0]}/{t[1]}" for t in tasks]
        path = tmp_path_factory.mktemp("stream-ckpt") / "c.ckpt"

        def run(worker, resume: bool):
            store = CampaignCheckpoint(
                path, fingerprint="synthetic", resume=resume,
                ordered_task_ids=task_ids, **_row_codec(),
            )
            fold = StreamFold(
                SweepAccumulator(), n_tasks=len(tasks), task_ids=task_ids,
                checkpoint=store, snapshot_every=snapshot_every,
            )
            if store.saved_state is not None:
                fold.restore(store.saved_state)
            engine = CampaignEngine(worker, jobs=1)
            try:
                engine.run(
                    tasks, task_ids=task_ids, checkpoint=store, consumer=fold
                )
                return fold.finalize()
            finally:
                store.close()

        if shape["crash_after"] is not None:
            with pytest.raises(SolverError, match="simulated"):
                run(_CrashAfter(shape["crash_after"]), resume=False)
            resumed = run(_CrashAfter(None), resume=True)
        else:
            resumed = run(_CrashAfter(None), resume=False)
        assert dumps(resumed.tables()) == dumps(reference_tables(tasks))

    def test_resume_after_snapshot_refolds_nothing_before_it(self, tmp_path):
        """Tasks covered by the accumulator snapshot are neither re-run
        nor re-decoded into rows: the engine replays the sentinel."""
        shape = dict(n_settings=2, n_replicates=3, methods=("greedy",),
                     objectives=("sum",), seed=9)
        tasks = synthetic_tasks(shape)
        task_ids = [f"{t[0]}/{t[1]}" for t in tasks]
        path = tmp_path / "c.ckpt"
        store = CampaignCheckpoint(path, fingerprint="s",
                                   ordered_task_ids=task_ids, **_row_codec())
        fold = StreamFold(SweepAccumulator(), n_tasks=len(tasks),
                          task_ids=task_ids, checkpoint=store,
                          snapshot_every=1)
        CampaignEngine(synthetic_task_rows, jobs=1).run(
            tasks, task_ids=task_ids, checkpoint=store, consumer=fold
        )
        expected = fold.finalize()
        store.close()

        def forbidden(task):  # pragma: no cover - must not be reached
            raise AssertionError("snapshot-covered tasks must not re-run")

        from repro.parallel.checkpoint import PREFOLDED

        store = CampaignCheckpoint(path, fingerprint="s", resume=True,
                                   ordered_task_ids=task_ids, **_row_codec())
        # every completed payload was snapshot-covered -> sentinel only
        assert all(v is PREFOLDED for v in store.completed.values())
        fold = StreamFold(SweepAccumulator(), n_tasks=len(tasks),
                          task_ids=task_ids, checkpoint=store)
        fold.restore(store.saved_state)
        CampaignEngine(forbidden, jobs=1).run(
            tasks, task_ids=task_ids, checkpoint=store, consumer=fold
        )
        assert dumps(fold.finalize().tables()) == dumps(expected.tables())
        store.close()


class TestSnapshotSidecar:
    """Snapshots live in an atomically-replaced sidecar: the main
    checkpoint file stays O(task records) however often we snapshot."""

    def _run(self, n_replicates: int, path, snapshot_every: int = 1):
        shape = dict(n_settings=2, n_replicates=n_replicates,
                     methods=("greedy",), objectives=("sum",), seed=5)
        tasks = synthetic_tasks(shape)
        task_ids = [f"{t[0]}/{t[1]}" for t in tasks]
        with CampaignCheckpoint(path, fingerprint="sc",
                                ordered_task_ids=task_ids,
                                **_row_codec()) as store:
            fold = StreamFold(SweepAccumulator(), n_tasks=len(tasks),
                              task_ids=task_ids, checkpoint=store,
                              snapshot_every=snapshot_every)
            CampaignEngine(synthetic_task_rows, jobs=1).run(
                tasks, task_ids=task_ids, checkpoint=store, consumer=fold
            )
            fold.finalize()
        return store

    def test_main_file_holds_no_state_records(self, tmp_path):
        store = self._run(4, tmp_path / "c.ckpt")
        assert '"kind": "state"' not in (tmp_path / "c.ckpt").read_text()
        assert store.state_path.exists()

    def test_sidecar_size_independent_of_snapshot_count(self, tmp_path):
        small = self._run(2, tmp_path / "small.ckpt")   # 4 snapshots
        large = self._run(24, tmp_path / "large.ckpt")  # 48 snapshots
        size_small = small.state_path.stat().st_size
        size_large = large.state_path.stat().st_size
        # one snapshot each (atomically replaced), not an append log
        assert size_large < 2 * size_small + 1024

    def test_inconsistent_snapshot_discarded_with_warning(self, tmp_path):
        from repro.parallel import CheckpointWarning

        path = tmp_path / "c.ckpt"
        self._run(3, path)
        # drop most task records while the sidecar still claims them
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")
        shape = dict(n_settings=2, n_replicates=3, methods=("greedy",),
                     objectives=("sum",), seed=5)
        tasks = synthetic_tasks(shape)
        task_ids = [f"{t[0]}/{t[1]}" for t in tasks]
        with pytest.warns(CheckpointWarning, match="discarding the snapshot"):
            store = CampaignCheckpoint(path, fingerprint="sc", resume=True,
                                       ordered_task_ids=task_ids,
                                       **_row_codec())
        assert store.saved_state is None  # falls back to record replay
        fold = StreamFold(SweepAccumulator(), n_tasks=len(tasks),
                          task_ids=task_ids, checkpoint=store)
        CampaignEngine(synthetic_task_rows, jobs=1).run(
            tasks, task_ids=task_ids, checkpoint=store, consumer=fold
        )
        assert dumps(fold.finalize().tables()) == dumps(
            reference_tables(tasks)
        )
        store.close()

    def test_stale_format_snapshot_falls_back_to_record_replay(
        self, tmp_path
    ):
        """A snapshot written by an older accumulator format (e.g. the
        pre-exact-sum STATE_VERSION 1) must be discarded with a warning
        — leaving the task records replayable — not crash the resume."""
        from repro.parallel import CheckpointWarning

        settings = sample_settings(2, rng=8, k_values=[4])
        kwargs = dict(
            methods=("greedy",), objectives=("sum",), n_platforms=2, rng=8
        )
        path = tmp_path / "sweep.ckpt"
        full = run_sweep(settings, stream=True, checkpoint=path, **kwargs)
        sidecar = path.with_name(path.name + ".state")
        record = json.loads(sidecar.read_text())
        record["state"]["aggregate"] = {"version": 1, "mean": 0.0}
        sidecar.write_text(json.dumps(record))
        with pytest.warns(CheckpointWarning, match="incompatible"):
            resumed = run_sweep(
                settings, stream=True, checkpoint=path, resume=True, **kwargs
            )
        # record replay reproduces everything, runtimes included
        assert dumps(resumed.tables()) == dumps(full.tables())

    def test_sidecar_fingerprint_mismatch_refuses_resume(self, tmp_path):
        from repro.parallel import CheckpointError

        path = tmp_path / "c.ckpt"
        self._run(2, path)
        # same main-file fingerprint, tampered sidecar fingerprint
        sidecar = path.with_name(path.name + ".state")
        record = json.loads(sidecar.read_text())
        record["fingerprint"] = "other-campaign"
        sidecar.write_text(json.dumps(record))
        with pytest.raises(CheckpointError, match="different campaign"):
            CampaignCheckpoint(path, fingerprint="sc", resume=True,
                               **_row_codec())

    def test_fresh_campaign_clears_stale_sidecar(self, tmp_path):
        path = tmp_path / "c.ckpt"
        self._run(2, path)
        sidecar = path.with_name(path.name + ".state")
        assert sidecar.exists()
        # restart WITHOUT resume: the stale snapshot must not survive
        with CampaignCheckpoint(path, fingerprint="sc") as store:
            store.record("0/0", [])
        assert not sidecar.exists()


class TestRealSweepEquivalence:
    """The facade path on real (small) sweeps."""

    @pytest.fixture(scope="class")
    def sweep_def(self):
        return dict(
            settings=sample_settings(2, rng=8, k_values=[4, 5]),
            kwargs=dict(
                methods=("greedy", "lprg"),
                objectives=("maxmin", "sum"),
                n_platforms=2,
                rng=8,
            ),
        )

    @pytest.fixture(scope="class")
    def reference(self, sweep_def):
        rows = run_sweep(sweep_def["settings"], **sweep_def["kwargs"])
        agg = aggregate_rows(
            rows,
            methods=sweep_def["kwargs"]["methods"],
            objectives=sweep_def["kwargs"]["objectives"],
        )
        return rows, agg

    @pytest.mark.parametrize(
        "jobs,chunk_size", [(1, None), (2, None), (2, 1), (3, 2)]
    )
    def test_streamed_matches_in_memory_fold(
        self, sweep_def, reference, jobs, chunk_size
    ):
        _, ref_agg = reference
        streamed = run_sweep(
            sweep_def["settings"], stream=True, jobs=jobs,
            chunk_size=chunk_size, **sweep_def["kwargs"],
        )
        assert dumps(tables_sans_runtime(streamed)) == dumps(
            tables_sans_runtime(ref_agg)
        )

    def test_streamed_checkpoint_crash_resume(
        self, sweep_def, reference, tmp_path
    ):
        _, ref_agg = reference
        path = tmp_path / "sweep.ckpt"
        full = run_sweep(
            sweep_def["settings"], stream=True, checkpoint=path,
            **sweep_def["kwargs"],
        )
        # interrupt: keep the header and the first completed task only
        lines = path.read_text().splitlines()
        kept = [l for l in lines if '"kind": "state"' not in l][:2]
        path.write_text("\n".join(kept) + "\n")
        resumed = run_sweep(
            sweep_def["settings"], stream=True, checkpoint=path,
            resume=True, **sweep_def["kwargs"],
        )
        assert dumps(tables_sans_runtime(resumed)) == dumps(
            tables_sans_runtime(full)
        )
        assert dumps(tables_sans_runtime(resumed)) == dumps(
            tables_sans_runtime(ref_agg)
        )

    def test_full_streaming_resume_recomputes_nothing(
        self, sweep_def, tmp_path, monkeypatch
    ):
        path = tmp_path / "sweep.ckpt"
        full = run_sweep(
            sweep_def["settings"], stream=True, checkpoint=path,
            **sweep_def["kwargs"],
        )

        def forbidden(task):  # pragma: no cover - must not be reached
            raise AssertionError("resume must not re-run completed tasks")

        monkeypatch.setattr("repro.parallel.sweep.run_sweep_task", forbidden)
        monkeypatch.setattr("repro.parallel.run_sweep_task", forbidden)
        resumed = run_sweep(
            sweep_def["settings"], stream=True, checkpoint=path,
            resume=True, **sweep_def["kwargs"],
        )
        # snapshot restore preserves even the runtime table bitwise
        assert dumps(resumed.tables()) == dumps(full.tables())

    def test_jsonl_row_sink_holds_the_rows(
        self, sweep_def, reference, tmp_path
    ):
        rows, _ = reference
        sink = tmp_path / "rows.jsonl"
        run_sweep(
            sweep_def["settings"], stream=True, row_sink=sink,
            **sweep_def["kwargs"],
        )
        assert_rows_identical(load_rows_jsonl(sink), rows)

    def test_csv_row_sink_holds_the_rows(self, sweep_def, reference, tmp_path):
        rows, _ = reference
        sink = tmp_path / "rows.csv"
        run_sweep(
            sweep_def["settings"], stream=True, row_sink=sink,
            **sweep_def["kwargs"],
        )
        assert_rows_identical(load_rows_csv(sink), rows)

    @pytest.mark.parametrize(
        "first_sink,second_sink",
        [(None, "rows.jsonl"), ("rows.jsonl", None),
         ("rows.jsonl", "other.jsonl")],
    )
    def test_resume_with_changed_row_sink_is_refused(
        self, sweep_def, tmp_path, first_sink, second_sink
    ):
        """A snapshot pins its sink: silently resuming into a different
        sink would drop every already-folded row from the file."""

        def sink_path(name):
            return None if name is None else str(tmp_path / name)

        path = tmp_path / "sweep.ckpt"
        run_sweep(
            sweep_def["settings"], stream=True, checkpoint=path,
            row_sink=sink_path(first_sink), **sweep_def["kwargs"],
        )
        with pytest.raises(SolverError, match="row_sink"):
            run_sweep(
                sweep_def["settings"], stream=True, checkpoint=path,
                resume=True, row_sink=sink_path(second_sink),
                **sweep_def["kwargs"],
            )

    def test_sink_restored_exactly_after_crash_resume(
        self, sweep_def, reference, tmp_path
    ):
        """After crash+resume the sink holds each row exactly once."""
        rows, _ = reference
        path = tmp_path / "sweep.ckpt"
        sink = tmp_path / "rows.jsonl"
        run_sweep(
            sweep_def["settings"], stream=True, checkpoint=path,
            row_sink=sink, **sweep_def["kwargs"],
        )
        lines = path.read_text().splitlines()
        kept = [l for l in lines if '"kind": "state"' not in l][:3]
        path.write_text("\n".join(kept) + "\n")
        run_sweep(
            sweep_def["settings"], stream=True, checkpoint=path,
            resume=True, row_sink=sink, **sweep_def["kwargs"],
        )
        assert_rows_identical(load_rows_jsonl(sink), rows)


class TestStreamEdgeCases:
    def test_empty_sweep_streams_to_empty_aggregate(self):
        agg = run_sweep([], stream=True, methods=("greedy",),
                        objectives=("sum",), n_platforms=1, rng=0)
        assert agg.n_rows == 0 and agg.n_tasks == 0
        assert agg.tables()["mean_ratio_by_k"] == {}

    def test_row_sink_without_stream_is_refused(self):
        from repro.api import SolverConfig

        with pytest.raises(SolverError, match="stream"):
            SolverConfig(row_sink="rows.jsonl")

    def test_unwritable_row_sink_fails_before_any_work(self, tmp_path):
        missing = tmp_path / "no-such-dir" / "rows.jsonl"
        with pytest.raises(SolverError, match="does not exist"):
            run_sweep(
                sample_settings(1, rng=0, k_values=[4]),
                stream=True, row_sink=missing,
                methods=("greedy",), objectives=("sum",),
                n_platforms=1, rng=0,
            )

    def test_open_row_sink_dispatches_on_suffix(self, tmp_path):
        from repro.parallel.stream import (
            CsvRowSink,
            JsonlRowSink,
            NullRowSink,
        )

        assert isinstance(open_row_sink(None), NullRowSink)
        assert isinstance(open_row_sink(tmp_path / "x.csv"), CsvRowSink)
        assert isinstance(open_row_sink(tmp_path / "x.jsonl"), JsonlRowSink)
        assert isinstance(open_row_sink(tmp_path / "x.txt"), JsonlRowSink)
