"""Tests for repro.core.allocation."""

import numpy as np
import pytest

from repro.core.allocation import Allocation
from repro.util.errors import ValidationError


def _alloc3():
    alpha = np.array(
        [
            [10.0, 2.0, 0.0],
            [0.0, 20.0, 3.0],
            [1.0, 0.0, 30.0],
        ]
    )
    beta = np.array([[0, 1, 0], [0, 0, 2], [1, 0, 0]])
    return Allocation(alpha, beta)


class TestConstruction:
    def test_zeros(self):
        a = Allocation.zeros(4)
        assert a.n_clusters == 4 and a.is_zero()

    def test_non_square_rejected(self):
        with pytest.raises(ValidationError):
            Allocation(np.zeros((2, 3)), np.zeros((2, 3), dtype=int))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            Allocation(np.zeros((2, 2)), np.zeros((3, 3), dtype=int))

    def test_copy_is_deep(self):
        a = _alloc3()
        b = a.copy()
        b.alpha[0, 0] = 99.0
        assert a.alpha[0, 0] == 10.0


class TestThroughput:
    def test_throughputs_are_row_sums(self):
        a = _alloc3()
        assert a.throughputs.tolist() == [12.0, 23.0, 31.0]
        assert a.throughput(0) == 12.0

    def test_compute_load_is_column_sum(self):
        a = _alloc3()
        assert a.compute_load(0) == 11.0
        assert a.compute_load(2) == 33.0

    def test_link_traffic_excludes_local(self):
        a = _alloc3()
        # C0: out = 2, in = 1
        assert a.link_traffic(0) == 3.0
        # C1: out = 3, in = 2
        assert a.link_traffic(1) == 5.0


class TestObjectives:
    def test_sum_value(self):
        a = _alloc3()
        assert a.sum_value([1.0, 2.0, 0.5]) == 12.0 + 46.0 + 15.5

    def test_maxmin_value(self):
        a = _alloc3()
        assert a.maxmin_value([1.0, 1.0, 1.0]) == 12.0

    def test_maxmin_skips_zero_payoffs(self):
        a = _alloc3()
        # App 0 has payoff 0 -> excluded from the min.
        assert a.maxmin_value([0.0, 1.0, 1.0]) == 23.0

    def test_maxmin_no_participants(self):
        assert _alloc3().maxmin_value([0.0, 0.0, 0.0]) == 0.0

    def test_objective_dispatch(self):
        a = _alloc3()
        assert a.objective_value("sum", [1, 1, 1]) == a.sum_value([1, 1, 1])
        assert a.objective_value("maxmin", [1, 1, 1]) == a.maxmin_value([1, 1, 1])
        with pytest.raises(ValueError):
            a.objective_value("nope", [1, 1, 1])


class TestTransfersAndMerge:
    def test_remote_transfers_skip_diagonal(self):
        transfers = list(_alloc3().remote_transfers())
        pairs = {(k, l) for k, l, _, _ in transfers}
        assert pairs == {(0, 1), (1, 2), (2, 0)}

    def test_remote_transfers_include_beta_only_entries(self):
        a = Allocation.zeros(2)
        a.beta[0, 1] = 3
        assert list(a.remote_transfers()) == [(0, 1, 0.0, 3)]

    def test_total_connections_excludes_diagonal(self):
        a = _alloc3()
        a.beta[1, 1] = 7  # bogus diagonal value must not count
        assert a.total_connections() == 4

    def test_merge(self):
        a = _alloc3()
        merged = a.merged_with(a)
        assert np.array_equal(merged.alpha, 2 * a.alpha)
        assert np.array_equal(merged.beta, 2 * a.beta)

    def test_merge_size_mismatch(self):
        with pytest.raises(ValidationError):
            _alloc3().merged_with(Allocation.zeros(2))

    def test_equality(self):
        assert _alloc3() == _alloc3()
        other = _alloc3()
        other.alpha[0, 0] += 1
        assert _alloc3() != other
        assert _alloc3() != "not an allocation"

    def test_describe_mentions_objectives(self):
        text = _alloc3().describe(payoffs=[1, 1, 1])
        assert "SUM=" in text and "MAXMIN=" in text
