"""Concurrent-access regression tests for the facade's shared state.

One :class:`~repro.api.Solver` (and its :class:`~repro.lp.builder.
LPBuildCache`) is shared by every request thread of the service layer.
These tests hammer a single instance from many threads and assert two
things: nothing corrupts (no exceptions, consistent counters) and
results stay bitwise-identical to the serial reference — reuse must be
value-transparent under contention, not just under sequential repeats.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import PlatformSpec, SteadyStateProblem, generate_platform
from repro.api import Solver, SolverConfig
from repro.lp.builder import LPBuildCache

N_THREADS = 8
ROUNDS_PER_THREAD = 5


def _problems() -> "list[SteadyStateProblem]":
    spec = PlatformSpec(
        n_clusters=4, connectivity=0.6, heterogeneity=0.4,
        mean_g=250.0, mean_bw=30.0, mean_max_connect=10.0,
        speed_heterogeneity=0.4,
    )
    return [
        SteadyStateProblem(generate_platform(spec, rng=seed),
                           objective=objective)
        for seed in (11, 22)
        for objective in ("maxmin", "sum")
    ]


def _signature(report):
    allocation = report.allocation
    return (
        report.value,
        report.n_lp_solves,
        None if allocation is None else allocation.alpha.tobytes(),
        None if allocation is None else allocation.beta.tobytes(),
    )


@pytest.mark.parametrize("method", ["greedy", "lprg"])
def test_one_solver_hammered_from_many_threads(method):
    problems = _problems()
    reference = [
        Solver(SolverConfig(method=method)).solve(p, rng=i)
        for i, p in enumerate(problems)
    ]
    expected = [_signature(r) for r in reference]

    shared = Solver(SolverConfig(method=method))

    def hammer(thread_index: int):
        out = []
        for round_index in range(ROUNDS_PER_THREAD):
            i = (thread_index + round_index) % len(problems)
            out.append((i, _signature(shared.solve(problems[i], rng=i))))
        return out

    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        results = [
            item
            for chunk in pool.map(hammer, range(N_THREADS))
            for item in chunk
        ]

    for i, signature in results:
        assert signature == expected[i], (
            "concurrent solve diverged from the serial reference"
        )
    assert shared.state.n_solves == N_THREADS * ROUNDS_PER_THREAD


def test_concurrent_solve_many_batches_share_one_solver():
    problems = _problems()
    shared = Solver(SolverConfig(method="greedy"))
    expected = [
        _signature(r) for r in shared.solve_many(problems, rng=99)
    ]

    def batch(_):
        return [_signature(r) for r in shared.solve_many(problems, rng=99)]

    with ThreadPoolExecutor(max_workers=6) as pool:
        for signatures in pool.map(batch, range(12)):
            assert signatures == expected


def test_lp_build_cache_counters_consistent_under_contention():
    problems = _problems()
    cache = LPBuildCache()
    solver = Solver(SolverConfig(method="lprg"))
    solver.state.lp_cache = cache

    def run(i):
        solver.solve(problems[i % len(problems)], rng=i % len(problems))

    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        list(pool.map(run, range(N_THREADS * 4)))

    stats = cache.stats()
    # Every build is either cold or a hit; totals must add up exactly
    # (a torn counter under a race would break this invariant).
    assert stats["cold_builds"] + stats["build_hits"] > 0
    assert stats["cold_builds"] >= stats["templates"] > 0


def test_index_adoption_threadsafe_for_equal_platforms():
    """Equal-but-distinct platform objects adopted concurrently."""
    spec = PlatformSpec(
        n_clusters=5, connectivity=0.7, heterogeneity=0.3,
        mean_g=250.0, mean_bw=30.0, mean_max_connect=10.0,
    )
    copies = [
        SteadyStateProblem(generate_platform(spec, rng=7), objective="maxmin")
        for _ in range(N_THREADS)
    ]
    solver = Solver(SolverConfig(method="greedy"))
    reference = _signature(
        Solver(SolverConfig(method="greedy")).solve(copies[0], rng=0)
    )

    def run(problem):
        return _signature(solver.solve(problem, rng=0))

    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        for signature in pool.map(run, copies):
            assert signature == reference
    assert len(solver.state.index_cache) == 1
