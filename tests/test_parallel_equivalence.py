"""Serial/parallel equivalence of the campaign subsystem.

The contract under test: ``jobs`` (and chunking) change wall-clock time
only — ``solve_many`` and ``run_sweep`` return *bitwise-identical*
values, allocations and orderings for any worker count, for every
registered method, across seeds and both objectives. Runtime fields are
the one sanctioned difference (wall clocks are not deterministic).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PlatformSpec, SteadyStateProblem, generate_platform, solve
from repro.core.solve import available_methods
from repro.experiments import run_setting, run_sweep, sample_settings
from repro.parallel import solve_many
from repro.util.rng import spawn_seed_sequences

from tests.strategies import problems

ALL_METHODS = available_methods()


def _fixed_problems() -> list[SteadyStateProblem]:
    """Two platforms x two objectives: a small but non-trivial batch.

    The first platform object is shared by two problems, exercising the
    shared LP-index cache path of ``solve_many``.
    """
    spec = PlatformSpec(
        n_clusters=4, connectivity=0.6, heterogeneity=0.4,
        mean_g=250.0, mean_bw=30.0, mean_max_connect=10.0,
        speed_heterogeneity=0.4,
    )
    p1 = generate_platform(spec, rng=11)
    p2 = generate_platform(spec, rng=22)
    return [
        SteadyStateProblem(p1, objective="maxmin"),
        SteadyStateProblem(p1, objective="sum"),
        SteadyStateProblem(p2, objective="maxmin"),
        SteadyStateProblem(p2, objective="sum"),
    ]


def assert_results_identical(a, b):
    """Bitwise equality of two HeuristicResult lists, modulo runtime."""
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.method == y.method and x.objective == y.objective
        assert x.value == y.value  # exact float equality, no tolerance
        assert x.n_lp_solves == y.n_lp_solves
        if x.allocation is None:
            assert y.allocation is None
        else:
            assert np.array_equal(x.allocation.alpha, y.allocation.alpha)
            assert np.array_equal(x.allocation.beta, y.allocation.beta)


def assert_rows_identical(a, b):
    """Bitwise equality of two ExperimentRow lists, modulo runtime."""
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.setting == y.setting
        assert (x.replicate, x.objective, x.method) == (
            y.replicate, y.objective, y.method)
        assert x.value == y.value
        assert x.lp_value == y.lp_value
        assert x.n_lp_solves == y.n_lp_solves


class TestSolveMany:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_parallel_matches_serial_every_method(self, method):
        problems_ = _fixed_problems()
        serial = solve_many(problems_, method, rng=123, jobs=1)
        parallel = solve_many(problems_, method, rng=123, jobs=2)
        assert_results_identical(serial, parallel)

    @pytest.mark.parametrize("chunk_size", [1, 3])
    def test_chunking_does_not_change_results(self, chunk_size):
        problems_ = _fixed_problems()
        serial = solve_many(problems_, "lprr", rng=7, jobs=1)
        chunked = solve_many(
            problems_, "lprr", rng=7, jobs=2, chunk_size=chunk_size
        )
        assert_results_identical(serial, chunked)

    @settings(max_examples=15)
    @given(
        problem=problems(max_clusters=4),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        method=st.sampled_from(ALL_METHODS),
    )
    def test_batch_matches_individual_solves(self, problem, seed, method):
        """solve_many is exactly per-problem solve() under spawned seeds."""
        batch = solve_many([problem, problem], method, rng=seed)
        seeds = spawn_seed_sequences(seed, 2)
        direct = [
            solve(problem, method, rng=np.random.default_rng(s))
            for s in seeds
        ]
        assert_results_identical(batch, direct)

    def test_results_keep_input_order(self):
        problems_ = _fixed_problems()
        results = solve_many(problems_, "greedy", rng=0, jobs=2)
        assert [r.objective for r in results] == [
            p.objective.name for p in problems_
        ]


class TestRunSweep:
    @pytest.mark.parametrize("objectives", [("maxmin",), ("sum",), ("maxmin", "sum")])
    def test_jobs4_matches_serial(self, objectives):
        settings_ = sample_settings(3, rng=5, k_values=[4, 5])
        kwargs = dict(
            methods=("greedy", "lpr", "lprg"),
            objectives=objectives,
            n_platforms=2,
            rng=5,
        )
        serial = run_sweep(settings_, **kwargs)
        parallel = run_sweep(settings_, jobs=4, **kwargs)
        assert_rows_identical(serial, parallel)

    def test_randomized_method_stream_equivalence(self):
        """LPRR consumes its task RNG: the strongest determinism check."""
        settings_ = sample_settings(2, rng=17, k_values=[4])
        kwargs = dict(
            methods=("greedy", "lprr"),
            objectives=("maxmin", "sum"),
            n_platforms=2,
            rng=17,
        )
        serial = run_sweep(settings_, **kwargs)
        parallel = run_sweep(settings_, jobs=3, chunk_size=1, **kwargs)
        assert_rows_identical(serial, parallel)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_equivalence_across_seeds(self, seed):
        settings_ = sample_settings(2, rng=seed, k_values=[3, 4])
        kwargs = dict(
            methods=("greedy", "lprg"),
            objectives=("maxmin", "sum"),
            n_platforms=1,
            rng=seed,
        )
        assert_rows_identical(
            run_sweep(settings_, **kwargs),
            run_sweep(settings_, jobs=2, **kwargs),
        )

    def test_runner_seed_derivation_pinned(self):
        """Replicate j of grid point i under root seed s runs under
        ``SeedSequence(s, spawn_key=(i, j))`` — the regression pin the
        serial/parallel determinism guarantee rests on."""
        from repro.experiments.runner import run_replicate

        settings_ = sample_settings(2, rng=5, k_values=[4])
        swept = run_sweep(
            settings_, methods=("greedy",), objectives=("sum",),
            n_platforms=2, rng=42,
        )
        manual = []
        for i, setting in enumerate(settings_):
            for j in range(2):
                seed = np.random.SeedSequence(42, spawn_key=(i, j))
                manual.extend(
                    run_replicate(
                        setting, j, methods=("greedy",),
                        objectives=("sum",),
                        rng=np.random.default_rng(seed),
                    )
                )
        assert_rows_identical(swept, manual)

    def test_run_setting_is_a_pure_function_of_its_seed(self):
        """Passing the same generator twice now yields identical rows —
        seed derivation no longer consumes mutable spawn state."""
        gen = np.random.default_rng(3)
        setting = sample_settings(1, rng=0, k_values=[4])[0]
        kwargs = dict(methods=("greedy",), objectives=("sum",), n_platforms=2)
        a = run_setting(setting, rng=gen, **kwargs)
        b = run_setting(setting, rng=gen, **kwargs)
        assert_rows_identical(a, b)

    def test_run_sweep_matches_run_setting_concatenation(self):
        """The engine path reproduces the historical serial definition."""
        settings_ = sample_settings(2, rng=3, k_values=[4, 5])
        swept = run_sweep(
            settings_, methods=("greedy",), objectives=("maxmin",),
            n_platforms=2, rng=3,
        )
        manual = []
        for setting, seed in zip(settings_, spawn_seed_sequences(3, 2)):
            manual.extend(
                run_setting(
                    setting, methods=("greedy",), objectives=("maxmin",),
                    n_platforms=2, rng=np.random.default_rng(seed),
                )
            )
        assert_rows_identical(swept, manual)
