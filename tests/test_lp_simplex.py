"""Tests for the from-scratch simplex solver (repro.lp.simplex)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import SteadyStateProblem
from repro.lp.builder import build_lp
from repro.lp.scipy_backend import solve_lp_scipy
from repro.lp.simplex import simplex_solve
from repro.util.errors import SolverError


class TestBasicLPs:
    def test_textbook_max(self):
        # max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2, 6)
        res = simplex_solve(
            c=[3, 5],
            A_ub=[[1, 0], [0, 2], [3, 2]],
            b_ub=[4, 12, 18],
        )
        assert res.ok
        assert res.value == pytest.approx(36.0)
        assert res.x == pytest.approx([2.0, 6.0])

    def test_degenerate_origin(self):
        res = simplex_solve(c=[-1, -1], A_ub=[[1, 1]], b_ub=[10])
        assert res.ok and res.value == pytest.approx(0.0)

    def test_unbounded_detected(self):
        res = simplex_solve(c=[1], A_ub=np.zeros((1, 1)), b_ub=[1])
        assert res.status == "unbounded"

    def test_infeasible_detected(self):
        # x >= 5 (as -x <= -5) with x <= 2.
        res = simplex_solve(c=[1], A_ub=[[-1], [1]], b_ub=[-5, 2])
        assert res.status == "infeasible"

    def test_negative_rhs_phase1(self):
        # x >= 3 and x <= 10, maximize -x -> x = 3, value -3.
        res = simplex_solve(c=[-1], A_ub=[[-1]], b_ub=[-3], bounds=[(0, 10)])
        assert res.ok
        assert res.x[0] == pytest.approx(3.0)

    def test_upper_bounds(self):
        res = simplex_solve(c=[1, 1], A_ub=[[1, 1]], b_ub=[100], bounds=[(0, 3), (0, 4)])
        assert res.ok and res.value == pytest.approx(7.0)

    def test_shifted_lower_bounds(self):
        # x in [2, 5], max x -> 5; min x (max -x) -> 2.
        res = simplex_solve(c=[1], A_ub=np.zeros((0, 1)).reshape(0, 1), b_ub=[], bounds=[(2, 5)])
        assert res.ok and res.value == pytest.approx(5.0)
        res = simplex_solve(c=[-1], A_ub=np.zeros((0, 1)), b_ub=[], bounds=[(2, 5)])
        assert res.ok and res.x[0] == pytest.approx(2.0)

    def test_infinite_lower_bound_rejected(self):
        with pytest.raises(SolverError):
            simplex_solve(c=[1], A_ub=[[1]], b_ub=[1], bounds=[(-np.inf, 1)])

    def test_crossed_bounds_infeasible(self):
        res = simplex_solve(c=[1], A_ub=[[1]], b_ub=[10], bounds=[(5, 3)])
        assert res.status == "infeasible"

    def test_shape_validation(self):
        with pytest.raises(SolverError):
            simplex_solve(c=[1, 2], A_ub=[[1]], b_ub=[1])


class TestAgainstHiGHSRandom:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30)
    def test_random_bounded_lps(self, seed):
        """On random LPs with box bounds (always feasible, always bounded)
        our simplex must match HiGHS's optimal value."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        m = int(rng.integers(1, 6))
        c = rng.uniform(-5, 5, n)
        A = rng.uniform(-2, 3, (m, n))
        b = rng.uniform(0.5, 10, m)  # b > 0: origin feasible
        ub = rng.uniform(1, 10, n)
        bounds = [(0.0, float(u)) for u in ub]

        ours = simplex_solve(c, A, b, bounds)
        assert ours.ok

        from scipy.optimize import linprog

        ref = linprog(-c, A_ub=A, b_ub=b, bounds=bounds, method="highs")
        assert ref.status == 0
        assert ours.value == pytest.approx(-ref.fun, abs=1e-7)
        # Solution must itself be feasible.
        assert np.all(A @ ours.x <= b + 1e-7)
        assert np.all(ours.x >= -1e-9) and np.all(ours.x <= ub + 1e-9)


class TestOnPaperInstances:
    @pytest.mark.parametrize("objective", ["sum", "maxmin"])
    def test_matches_highs_on_program7(self, problem_factory, objective):
        """The stand-in for lp_solve must reproduce HiGHS on real
        program-(7) instances (small K for the dense tableau)."""
        problem = problem_factory(seed=0, n_clusters=4, objective=objective)
        inst = build_lp(problem)
        ref = solve_lp_scipy(inst)
        ours = simplex_solve(
            inst.obj, inst.A_ub.toarray(), inst.b_ub, inst.bounds_list()
        )
        assert ours.ok
        assert ours.value == pytest.approx(ref.value, rel=1e-6, abs=1e-6)

    def test_several_seeds(self, problem_factory):
        for seed in range(4):
            problem = problem_factory(seed=seed, n_clusters=3, objective="maxmin")
            inst = build_lp(problem)
            ref = solve_lp_scipy(inst)
            ours = simplex_solve(
                inst.obj, inst.A_ub.toarray(), inst.b_ub, inst.bounds_list()
            )
            assert ours.value == pytest.approx(ref.value, rel=1e-6, abs=1e-6)
