"""Tests for the from-scratch simplex solver (repro.lp.simplex)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import SteadyStateProblem
from repro.lp.builder import build_lp
from repro.lp.scipy_backend import solve_lp_scipy
from repro.lp.simplex import simplex_solve
from repro.util.errors import SolverError


class TestBasicLPs:
    def test_textbook_max(self):
        # max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2, 6)
        res = simplex_solve(
            c=[3, 5],
            A_ub=[[1, 0], [0, 2], [3, 2]],
            b_ub=[4, 12, 18],
        )
        assert res.ok
        assert res.value == pytest.approx(36.0)
        assert res.x == pytest.approx([2.0, 6.0])

    def test_degenerate_origin(self):
        res = simplex_solve(c=[-1, -1], A_ub=[[1, 1]], b_ub=[10])
        assert res.ok and res.value == pytest.approx(0.0)

    def test_unbounded_detected(self):
        res = simplex_solve(c=[1], A_ub=np.zeros((1, 1)), b_ub=[1])
        assert res.status == "unbounded"

    def test_infeasible_detected(self):
        # x >= 5 (as -x <= -5) with x <= 2.
        res = simplex_solve(c=[1], A_ub=[[-1], [1]], b_ub=[-5, 2])
        assert res.status == "infeasible"

    def test_negative_rhs_phase1(self):
        # x >= 3 and x <= 10, maximize -x -> x = 3, value -3.
        res = simplex_solve(c=[-1], A_ub=[[-1]], b_ub=[-3], bounds=[(0, 10)])
        assert res.ok
        assert res.x[0] == pytest.approx(3.0)

    def test_upper_bounds(self):
        res = simplex_solve(c=[1, 1], A_ub=[[1, 1]], b_ub=[100], bounds=[(0, 3), (0, 4)])
        assert res.ok and res.value == pytest.approx(7.0)

    def test_shifted_lower_bounds(self):
        # x in [2, 5], max x -> 5; min x (max -x) -> 2.
        res = simplex_solve(c=[1], A_ub=np.zeros((0, 1)).reshape(0, 1), b_ub=[], bounds=[(2, 5)])
        assert res.ok and res.value == pytest.approx(5.0)
        res = simplex_solve(c=[-1], A_ub=np.zeros((0, 1)), b_ub=[], bounds=[(2, 5)])
        assert res.ok and res.x[0] == pytest.approx(2.0)

    def test_infinite_lower_bound_rejected(self):
        with pytest.raises(SolverError):
            simplex_solve(c=[1], A_ub=[[1]], b_ub=[1], bounds=[(-np.inf, 1)])

    def test_crossed_bounds_infeasible(self):
        res = simplex_solve(c=[1], A_ub=[[1]], b_ub=[10], bounds=[(5, 3)])
        assert res.status == "infeasible"

    def test_shape_validation(self):
        with pytest.raises(SolverError):
            simplex_solve(c=[1, 2], A_ub=[[1]], b_ub=[1])


class TestAgainstHiGHSRandom:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30)
    def test_random_bounded_lps(self, seed):
        """On random LPs with box bounds (always feasible, always bounded)
        our simplex must match HiGHS's optimal value."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        m = int(rng.integers(1, 6))
        c = rng.uniform(-5, 5, n)
        A = rng.uniform(-2, 3, (m, n))
        b = rng.uniform(0.5, 10, m)  # b > 0: origin feasible
        ub = rng.uniform(1, 10, n)
        bounds = [(0.0, float(u)) for u in ub]

        ours = simplex_solve(c, A, b, bounds)
        assert ours.ok

        from scipy.optimize import linprog

        ref = linprog(-c, A_ub=A, b_ub=b, bounds=bounds, method="highs")
        assert ref.status == 0
        assert ours.value == pytest.approx(-ref.fun, abs=1e-7)
        # Solution must itself be feasible.
        assert np.all(A @ ours.x <= b + 1e-7)
        assert np.all(ours.x >= -1e-9) and np.all(ours.x <= ub + 1e-9)


class TestOnPaperInstances:
    @pytest.mark.parametrize("objective", ["sum", "maxmin"])
    def test_matches_highs_on_program7(self, problem_factory, objective):
        """The stand-in for lp_solve must reproduce HiGHS on real
        program-(7) instances (small K for the dense tableau)."""
        problem = problem_factory(seed=0, n_clusters=4, objective=objective)
        inst = build_lp(problem)
        ref = solve_lp_scipy(inst)
        ours = simplex_solve(
            inst.obj, inst.A_ub.toarray(), inst.b_ub, inst.bounds_list()
        )
        assert ours.ok
        assert ours.value == pytest.approx(ref.value, rel=1e-6, abs=1e-6)

    def test_several_seeds(self, problem_factory):
        for seed in range(4):
            problem = problem_factory(seed=seed, n_clusters=3, objective="maxmin")
            inst = build_lp(problem)
            ref = solve_lp_scipy(inst)
            ours = simplex_solve(
                inst.obj, inst.A_ub.toarray(), inst.b_ub, inst.bounds_list()
            )
            assert ours.value == pytest.approx(ref.value, rel=1e-6, abs=1e-6)


class TestToleranceRegressions:
    """Regression pins for the three scale-dependent tolerance bugs.

    The tableau solver used (a) an absolute ``atol=1e-12`` when
    collecting ratio-test ties, so large-magnitude ties were missed and
    Bland's anti-cycling tie-break ran on a truncated tie set; (b) a
    clamp ``max(rhs, 0)`` on slightly-negative carried-basis values,
    silently perturbing the warm starting point; and (c) an absolute
    ``1e-7`` threshold on the phase-1 residual, misclassifying feasible
    badly-scaled programs as infeasible.
    """

    def test_degenerate_ties_at_large_magnitude(self):
        """Beale-style degenerate LP, scaled so every ratio tie sits at
        ~1e9: the relative tie test must still collect the full tie set
        and the run must terminate at the optimum (no cycling)."""
        s = 3.7e9
        # Beale's classical cycling example (degenerate at the origin),
        # with a bounding row to keep the optimum finite.
        c = [0.75, -150.0, 0.02, -6.0]
        A = [
            [0.25, -60.0, -1.0 / 25.0, 9.0],
            [0.5, -90.0, -1.0 / 50.0, 3.0],
            [0.0, 0.0, 1.0, 0.0],
        ]
        b = [0.0, 0.0, 1.0]
        ref = simplex_solve(c, A, b)
        assert ref.ok
        scaled = simplex_solve(c, A, [s * bi for bi in b],
                               bounds=[(0, None)] * 4, max_iter=10_000)
        assert scaled.ok
        assert scaled.value == pytest.approx(s * ref.value, rel=1e-9)

    def test_degenerate_redundant_rows_scaled(self):
        """Many coincident constraints at a huge scale: every pivot's
        ratio test is an all-tied, large-magnitude decision."""
        s = 1.9e9
        A = [[1.0, 1.0], [1.0, 1.0], [2.0, 2.0], [1.0, 0.0]]
        b = [s, s, 2.0 * s, s]
        res = simplex_solve([1.0, 1.0], A, b, max_iter=1000)
        assert res.ok
        assert res.value == pytest.approx(s, rel=1e-12)

    def test_warm_negative_basic_rejected_not_clamped(self):
        """A carried basis whose basic values go slightly negative must
        be rejected (cold restart), not clamped onto the feasibility
        boundary — the clamp reported a superoptimal value from an
        infeasible starting tableau."""
        c = [1.0, 1.0]
        A = [[1.0, 1.0], [1.0, -1.0]]
        eps = 1e-9
        b = [2.0, 2.0 + eps]
        # Basis {x, y}: B^{-1} b = [2 + eps/2, -eps/2] — y negative.
        res = simplex_solve(c, A, b, initial_basis=np.array([0, 1]))
        assert res.ok
        assert not res.warm_started  # basis rejected, not repaired
        assert res.value <= 2.0 + 1e-12
        assert res.value == pytest.approx(2.0)

    @pytest.mark.parametrize("scale", [1.0, 1e6, 1e9])
    def test_phase1_threshold_scales_with_rhs(self, problem_factory, scale):
        """Rescaled program-(7) instances with pinned betas (so phase 1
        actually runs) must agree with HiGHS on status and value at
        every scale."""
        problem = problem_factory(seed=0, n_clusters=4)
        inst = build_lp(problem)
        ref0 = solve_lp_scipy(inst)
        n_alpha = inst.index.n_alpha
        # Pin half the betas at their LP value, floored: lb == ub > 0
        # shifts those rows' RHS negative, forcing artificials.
        for i in range(n_alpha, inst.n_vars, 2):
            v = float(np.floor(ref0.x[i]))
            inst.lb[i] = inst.ub[i] = v
        inst.invalidate_bounds()
        inst.b_ub *= scale
        inst.lb *= scale
        inst.ub *= scale
        inst.invalidate_bounds()
        ref = solve_lp_scipy(inst)
        ours = simplex_solve(
            inst.obj, inst.A_ub.toarray(), inst.b_ub, inst.bounds_list()
        )
        assert ours.ok
        assert ours.value == pytest.approx(ref.value, rel=1e-6)
