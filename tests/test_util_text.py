"""Tests for repro.util.tables, ascii_plot and timing."""

import time

import pytest

from repro.util.ascii_plot import ascii_series_plot
from repro.util.tables import TextTable
from repro.util.timing import Timer, timed


class TestTextTable:
    def test_basic_render(self):
        t = TextTable(["a", "b"])
        t.add_row([1, 2.5])
        out = t.render()
        assert "a" in out and "2.500" in out
        assert out.count("\n") == 2  # header + rule + one row

    def test_column_width_adapts(self):
        t = TextTable(["x"])
        t.add_row(["a-very-long-cell"])
        assert "a-very-long-cell" in t.render()

    def test_row_length_checked(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_custom_float_format(self):
        t = TextTable(["v"], float_fmt=".1f")
        t.add_row([3.14159])
        assert "3.1" in t.render()
        assert "3.14" not in t.render()


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        out = ascii_series_plot({"s1": [(0, 0), (1, 1)], "s2": [(0, 1), (1, 0)]})
        assert "o=s1" in out and "x=s2" in out

    def test_title_rendered(self):
        out = ascii_series_plot({"s": [(0, 1)]}, title="hello")
        assert out.startswith("hello")

    def test_log_scale_drops_nonpositive(self):
        out = ascii_series_plot({"s": [(0, 0.0), (1, 10.0)]}, logy=True)
        assert "log10(y)" in out

    def test_empty_series(self):
        out = ascii_series_plot({}, title="t")
        assert "no data" in out

    def test_constant_series_does_not_crash(self):
        out = ascii_series_plot({"flat": [(0, 5.0), (10, 5.0)]})
        assert "flat" in out


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t.measure():
            time.sleep(0.001)
        with t.measure():
            pass
        assert t.count == 2
        assert t.total >= 0.001
        assert len(t.laps) == 2

    def test_mean_empty_is_zero(self):
        assert Timer().mean == 0.0

    def test_reset(self):
        t = Timer()
        with t.measure():
            pass
        t.reset()
        assert t.count == 0 and t.total == 0.0 and not t.laps

    def test_timed_contextmanager(self):
        sink = {}
        with timed(sink, "block"):
            pass
        with timed(sink, "block"):
            pass
        assert sink["block"] >= 0.0
