"""Service observability: ``GET /metrics``, per-job traces, ``/stats``.

Covers the PR-10 introspection surface end to end through the in-process
ASGI client: Prometheus text validity, the metric families the endpoint
must expose (solver pool, coalescer, jobs, LP iterations, request
latency), retained span trees behind ``GET /jobs/{id}/trace``, and the
cumulative thread-safety of the ``/stats`` counters under a concurrent
request storm.
"""

from __future__ import annotations

import re
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service import create_app
from repro.service.testing import AsgiTestClient

SOLVE_BODY = {"scenario": "das2", "seed": 3, "config": {"method": "lprr"}}
SWEEP_BODY = {
    "settings": [
        {"K": 4, "connectivity": 0.5, "heterogeneity": 0.4,
         "mean_g": 250.0, "mean_bw": 30.0, "mean_maxcon": 10.0},
    ],
    "scenario": "calibrated",
    "methods": ["greedy"],
    "objectives": ["maxmin"],
    "n_platforms": 1,
    "seed": 7,
}


@pytest.fixture()
def client():
    app = create_app(max_workers=4, coalesce_window=0.002)
    yield AsgiTestClient(app)
    app.service.close()


def wait_done(client, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = client.get(f"/jobs/{job_id}/status").json()["status"]
        if status in ("done", "failed"):
            return status
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish")


SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]?(Inf|[0-9eE.+-]+))$"
)


class TestMetricsEndpoint:
    def test_prometheus_text_is_well_formed(self, client):
        assert client.post("/solve", SOLVE_BODY).status == 200
        response = client.get("/metrics")
        assert response.status == 200
        assert response.headers["content-type"].startswith("text/plain")
        assert "version=0.0.4" in response.headers["content-type"]
        typed: set = set()
        for line in response.body.decode().splitlines():
            if line.startswith("# TYPE "):
                name, kind = line.split()[2:4]
                assert kind in ("counter", "gauge", "histogram")
                typed.add(name)
            elif not line.startswith("#"):
                assert SAMPLE_LINE.match(line), line
                family = line.split("{")[0].split(" ")[0]
                family = re.sub(r"_(bucket|sum|count)$", "", family)
                assert family in typed, f"untyped sample {line!r}"

    def test_exposes_pool_coalescer_job_and_lp_families(self, client):
        assert client.post("/solve", SOLVE_BODY).status == 200
        text = client.get("/metrics").body.decode()
        for family in (
            "repro_pool_hits_total",
            "repro_pool_misses_total",
            "repro_pool_size",
            "repro_coalesce_batches_total",
            "repro_coalesce_batch_size",
            "repro_jobs{",
            "repro_solves_total",
            "repro_lp_iterations_total",
            "repro_requests_total",
            "repro_request_seconds_bucket",
        ):
            assert family in text, family

    def test_lp_iterations_accumulate_across_solves(self, client):
        def iterations():
            text = client.get("/metrics").body.decode()
            (line,) = [
                l for l in text.splitlines()
                if l.startswith("repro_lp_iterations_total ")
            ]
            return int(line.split()[1])

        assert client.post("/solve", SOLVE_BODY).status == 200
        first = iterations()
        assert first > 0
        assert client.post("/solve", SOLVE_BODY).status == 200
        assert iterations() == 2 * first  # same instance, warm or not

    def test_job_gauges_reflect_the_store(self, client):
        job = client.post("/sweep", SWEEP_BODY).json()["job"]
        wait_done(client, job["job_id"])
        text = client.get("/metrics").body.decode()
        assert 'repro_jobs{status="done"} 1' in text
        assert 'repro_jobs{status="failed"} 0' in text


class TestJobTraces:
    def test_sweep_job_trace_shows_the_campaign_tree(self, client):
        job = client.post("/sweep", SWEEP_BODY).json()["job"]
        assert wait_done(client, job["job_id"]) == "done"
        response = client.get(f"/jobs/{job['job_id']}/trace")
        assert response.status == 200
        payload = response.json()
        assert payload["job_id"] == job["job_id"]
        (campaign,) = [
            t for t in payload["trace"] if t["name"] == "campaign"
        ]
        assert campaign["duration_seconds"] > 0
        assert [c["name"] for c in campaign["children"]] == ["task"]

    def test_async_solve_trace(self, client):
        body = dict(SOLVE_BODY, **{"async": True, "coalesce": False})
        _, payload = ("job", client.post("/solve", body).json()["job"])
        wait_done(client, payload["job_id"])
        trace = client.get(f"/jobs/{payload['job_id']}/trace").json()
        (root,) = trace["trace"]
        assert root["name"] == "solve"
        child_names = {c["name"] for c in root.get("children", ())}
        assert "lp_build" in child_names

    def test_unknown_job_404s(self, client):
        assert client.get("/jobs/nope/trace").status == 404

    def test_untraced_job_404s_with_reason(self, client):
        job = client.post(
            "/sweep", dict(SWEEP_BODY, hold=True)
        ).json()["job"]
        response = client.get(f"/jobs/{job['job_id']}/trace")
        assert response.status == 404
        assert "no retained trace" in response.json()["error"]


class TestStatsUnderConcurrency:
    def test_counters_are_cumulative_and_consistent(self, client):
        """Satellite (c): hammer /solve from many threads, then check
        the /stats counters add up exactly — no lost updates."""
        n_requests = 24

        def solve(i):
            body = dict(SOLVE_BODY, seed=i % 3)
            response = client.post("/solve", body)
            assert response.status == 200

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(solve, range(n_requests)))

        stats = client.get("/stats").json()
        pool_stats = stats["pool"]
        coalescer = stats["coalescer"]
        assert pool_stats["pool_hits"] + pool_stats["pool_misses"] >= n_requests
        assert pool_stats["pool_misses"] >= 1
        # every request travelled in exactly one coalesced batch
        assert coalescer["coalesced_requests"] == n_requests
        assert 1 <= coalescer["batches"] <= n_requests
        assert coalescer["largest_batch"] >= 1
        assert stats["uptime"] > 0
        # /metrics agrees with /stats (same registry, no parallel books)
        text = client.get("/metrics").body.decode()
        assert (
            f"repro_coalesce_requests_total {coalescer['coalesced_requests']}"
            in text
        )
        assert f"repro_pool_hits_total {pool_stats['pool_hits']}" in text
