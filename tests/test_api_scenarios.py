"""Scenario registry: registration, lookup, construction, Solver glue."""

import doctest

import numpy as np
import pytest

from repro import (
    Solver,
    SolverConfig,
    available_scenarios,
    build_scenario,
    scenario_info,
    solve,
)
from repro.api.scenarios import ScenarioRegistry
from repro.experiments.config import DEFAULT_SCENARIO, LITERAL_SCENARIO


class TestBuiltins:
    def test_builtin_names_present(self):
        names = available_scenarios()
        for expected in (
            "grid5000", "das2", "intercontinental",
            "table1-small", "table1-medium", "hotspot",
            "calibrated", "paper-literal",
        ):
            assert expected in names

    def test_kind_filter(self):
        platform_names = available_scenarios("platform")
        sweep_names = available_scenarios("sweep")
        events_names = available_scenarios("events")
        assert "das2" in platform_names and "das2" not in sweep_names
        assert "calibrated" in sweep_names and "calibrated" not in platform_names
        assert "drift-heavy" in events_names
        assert "drift-heavy" not in platform_names
        assert set(platform_names) | set(sweep_names) | set(
            events_names
        ) == set(available_scenarios())

    def test_info(self):
        info = scenario_info("hotspot")
        assert info.kind == "platform"
        assert "hub" in info.description
        assert info.as_dict()["name"] == "hotspot"

    @pytest.mark.parametrize(
        "name", ["grid5000", "das2", "intercontinental", "hotspot"]
    )
    def test_fixed_scenarios_build_and_solve(self, name):
        problem = build_scenario(name, objective="sum")
        assert problem.objective.name == "sum"
        report = solve(problem, "greedy")
        assert report.value > 0

    def test_presets_ignore_rng(self):
        a = build_scenario("das2", rng=0)
        b = build_scenario("das2", rng=123)
        assert a.platform.n_clusters == b.platform.n_clusters
        assert np.array_equal(a.payoffs, b.payoffs)

    def test_table1_family_is_seeded(self):
        a = build_scenario("table1-small", rng=7)
        b = build_scenario("table1-small", rng=7)
        c = build_scenario("table1-small", rng=8)
        assert np.array_equal(a.payoffs, b.payoffs)
        assert not np.array_equal(a.payoffs, c.payoffs)
        assert a.n_clusters == 6
        assert build_scenario("table1-medium", rng=0).n_clusters == 15

    def test_sweep_scenarios_resolve(self):
        from repro.api import scenario_registry

        registry = scenario_registry()
        assert registry.sweep_scenario("calibrated") == DEFAULT_SCENARIO
        assert registry.sweep_scenario("paper-literal") == LITERAL_SCENARIO

    def test_kind_mismatch_rejected(self):
        from repro.api import scenario_registry

        with pytest.raises(ValueError, match="sweep"):
            scenario_registry().sweep_scenario("das2")
        with pytest.raises(ValueError, match="platform"):
            build_scenario("calibrated")


class TestRegistryMechanics:
    def test_register_and_build_custom(self):
        registry = ScenarioRegistry()
        registry.register(
            "tiny-line",
            lambda rng: (
                __import__("repro").line_platform(3, g=50.0),
                [1.0, 2.0, 1.0],
            ),
            description="three clusters in a row",
        )
        problem = registry.build_problem("tiny-line")
        assert problem.n_clusters == 3
        assert problem.payoffs[1] == 2.0
        assert registry.names() == ("tiny-line",)

    def test_duplicate_rejected_unless_overwrite(self):
        registry = ScenarioRegistry()
        factory = lambda rng: (None, None)  # noqa: E731 - never built
        registry.register("x", factory)
        with pytest.raises(ValueError, match="duplicate"):
            registry.register("x", factory)
        registry.register("x", factory, overwrite=True)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ScenarioRegistry().register("x", lambda rng: None, kind="magic")

    def test_unknown_name_suggests(self):
        with pytest.raises(ValueError, match="did you mean 'das2'"):
            build_scenario("daz2")

    def test_lookup_case_insensitive(self):
        assert scenario_info("DAS2").name == "das2"


class TestSolverScenarioGlue:
    def test_solve_scenario_deterministic(self):
        solver = Solver(SolverConfig(method="lprg"))
        a = solver.solve_scenario("table1-small", rng=5)
        b = Solver(SolverConfig(method="lprg")).solve_scenario(
            "table1-small", rng=5
        )
        assert a.value == b.value
        assert np.array_equal(a.allocation.alpha, b.allocation.alpha)

    def test_solve_scenario_uses_config_objective(self):
        report = Solver(
            SolverConfig(method="greedy", objective="sum")
        ).solve_scenario("das2")
        assert report.objective == "sum"

    def test_module_doctests(self):
        import repro.api.scenarios as module

        result = doctest.testmod(module, verbose=False)
        assert result.failed == 0
        assert result.attempted > 0
