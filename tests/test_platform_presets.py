"""Tests for the named testbed presets."""

import numpy as np
import pytest

from repro import SteadyStateProblem, solve, validate_allocation
from repro.platform.presets import (
    PRESETS,
    das2_like,
    get_preset,
    grid5000_like,
    intercontinental_grid,
)
from repro.util.errors import PlatformError


class TestPresetStructure:
    def test_grid5000_shape(self):
        p = grid5000_like()
        assert p.n_clusters == 9
        # Every pair of sites is routable over the national backbone.
        for k in range(9):
            for l in range(9):
                if k != l:
                    assert p.has_route(k, l)

    def test_das2_star_backbone(self):
        p = das2_like()
        assert p.n_clusters == 5
        assert "rtr-surfnet" in p.routers  # pass-through router
        # Routes between sites are exactly two hops via surfnet.
        assert len(p.route(0, 1)) == 2

    def test_intercontinental_scarcity(self):
        p = intercontinental_grid()
        # Oceanic links are thin and connection-limited by design.
        assert all(li.max_connect <= 6 for li in p.links.values())
        assert all(li.bw <= 8.0 for li in p.links.values())

    def test_get_preset_lookup(self):
        for name in PRESETS:
            assert get_preset(name).n_clusters >= 4

    def test_unknown_preset(self):
        with pytest.raises(PlatformError):
            get_preset("nope")


class TestPresetsAreSolvable:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_full_pipeline(self, name):
        platform = get_preset(name)
        problem = SteadyStateProblem(platform, objective="maxmin")
        lp = solve(problem, "lp")
        lprg = solve(problem, "lprg")
        validate_allocation(platform, lprg.allocation)
        assert 0 < lprg.value <= lp.value + 1e-6

    def test_scarce_preset_separates_heuristics(self):
        # On the intercontinental preset with one dominant application,
        # network scarcity makes heuristic choice visible.
        platform = intercontinental_grid()
        payoffs = [1.0, 1.0, 1.0, 4.0]  # Sydney's work is precious
        problem = SteadyStateProblem(platform, payoffs, objective="maxmin")
        values = {
            m: solve(problem, m, rng=0).value for m in ("greedy", "lpr", "lprg")
        }
        lp = solve(problem, "lp").value
        assert values["lprg"] <= lp + 1e-6
        assert values["lprg"] >= values["lpr"] - 1e-9
