"""Fault paths of the campaign subsystem: checkpoint/resume round-trips,
worker-exception propagation as SolverError, worker-crash recovery, and
the ``jobs=1`` inline path behaving exactly like the old serial runner.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.experiments import run_setting, run_sweep, sample_settings
from repro.experiments.persistence import row_to_dict
from repro.parallel import (
    CampaignCheckpoint,
    CampaignEngine,
    CheckpointError,
    CheckpointWarning,
    build_sweep_tasks,
    default_chunk_size,
)
from repro.util.errors import SolverError
from repro.util.rng import spawn_seed_sequences

from tests.test_parallel_equivalence import assert_rows_identical


# ----------------------------------------------------------------------
# module-level workers (must be picklable for the pool tests)
def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError(f"task payload {x} is cursed")
    return x * x


def _crash_on_three(x):
    if x == 3:
        os._exit(17)  # hard worker death, not an exception
    return x * x


def _crash_once_flagfile(arg):
    """Dies the first time it sees payload 3 (flag file = crash memory)."""
    x, flag = arg
    if x == 3 and not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(17)
    return x * x


class TestEngineFaults:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_worker_exception_becomes_solver_error(self, jobs):
        engine = CampaignEngine(_fail_on_three, jobs=jobs)
        with pytest.raises(SolverError, match="cursed"):
            engine.run([1, 2, 3, 4])

    def test_completed_siblings_survive_a_failure(self, tmp_path):
        store = CampaignCheckpoint(tmp_path / "c.ckpt", fingerprint="f")
        engine = CampaignEngine(_fail_on_three, jobs=1)
        with pytest.raises(SolverError):
            engine.run([1, 2, 3, 4], task_ids=["a", "b", "c", "d"],
                       checkpoint=store)
        store.close()
        assert store.completed == {"a": 1, "b": 4}

    def test_persistent_worker_crash_is_reported(self):
        engine = CampaignEngine(_crash_on_three, jobs=2, max_task_retries=1)
        with pytest.raises(SolverError, match="killed its worker"):
            engine.run([1, 2, 3, 4, 5, 6])

    def test_transient_worker_crash_recovers(self, tmp_path):
        flag = str(tmp_path / "crashed-once")
        tasks = [(x, flag) for x in [1, 2, 3, 4, 5, 6]]
        engine = CampaignEngine(_crash_once_flagfile, jobs=2,
                                max_task_retries=2)
        assert engine.run(tasks) == [1, 4, 9, 16, 25, 36]
        assert os.path.exists(flag)  # it really did die once

    def test_jobs_one_uses_no_process_pool(self, monkeypatch):
        import repro.parallel.engine as engine_mod

        def boom(*a, **k):  # pragma: no cover - must not be reached
            raise AssertionError("jobs=1 must never build a pool")

        monkeypatch.setattr(engine_mod, "ProcessPoolExecutor", boom)
        assert CampaignEngine(_square, jobs=1).run([2, 3]) == [4, 9]

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            CampaignEngine(_square, jobs=0)
        with pytest.raises(ValueError):
            CampaignEngine(_square, chunk_size=0)
        engine = CampaignEngine(_square)
        with pytest.raises(ValueError):
            engine.run([1, 2], task_ids=["x"])  # length mismatch
        with pytest.raises(ValueError):
            engine.run([1, 2], task_ids=["x", "x"])  # duplicate ids

    def test_default_chunk_size(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(10, 1) == 10
        assert default_chunk_size(100, 4) == 7
        assert default_chunk_size(3, 8) == 1


class TestCheckpoint:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "c.ckpt"
        with CampaignCheckpoint(path, fingerprint="fp") as store:
            store.record("t0", {"v": 1})
            store.record("t1", {"v": 2})
        resumed = CampaignCheckpoint(path, fingerprint="fp", resume=True)
        assert resumed.completed == {"t0": {"v": 1}, "t1": {"v": 2}}

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "c.ckpt"
        with CampaignCheckpoint(path, fingerprint="fp-a") as store:
            store.record("t0", 1)
        with pytest.raises(CheckpointError, match="different campaign"):
            CampaignCheckpoint(path, fingerprint="fp-b", resume=True)

    def test_truncated_tail_is_dropped_with_warning(self, tmp_path):
        path = tmp_path / "c.ckpt"
        with CampaignCheckpoint(path, fingerprint="fp") as store:
            store.record("t0", 1)
            store.record("t1", 2)
        # simulate a crash mid-write: chop the last line in half
        text = path.read_text()
        path.write_text(text[: len(text) - 8])
        with pytest.warns(CheckpointWarning, match="recomputed"):
            resumed = CampaignCheckpoint(path, fingerprint="fp", resume=True)
        assert resumed.completed == {"t0": 1}

    def test_corrupt_final_record_skipped_not_crash(self, tmp_path):
        """A structurally-valid JSON line whose payload cannot be decoded
        (crash mid-write through a buffering layer) must warn + recompute
        — the regression was a hard crash on resume."""
        path = tmp_path / "c.ckpt"
        with CampaignCheckpoint(path, fingerprint="fp") as store:
            store.record("t0", {"v": 1})
            store.record("t1", {"v": 2})
        with path.open("a") as fh:
            fh.write('{"kind": "task", "id": "t2"}\n')  # no "result" key
        with pytest.warns(CheckpointWarning, match="undecodable"):
            resumed = CampaignCheckpoint(path, fingerprint="fp", resume=True)
        assert resumed.completed == {"t0": {"v": 1}, "t1": {"v": 2}}

    def test_corrupt_tail_is_truncated_on_next_write(self, tmp_path):
        """The first record() after a corrupt-tail resume physically
        drops the bad bytes, so the repaired file loads cleanly (and
        silently) next time."""
        import warnings

        path = tmp_path / "c.ckpt"
        with CampaignCheckpoint(path, fingerprint="fp") as store:
            store.record("t0", 1)
        with path.open("a") as fh:
            fh.write('{"kind": "task", "id"')  # torn mid-write
        with pytest.warns(CheckpointWarning):
            store = CampaignCheckpoint(path, fingerprint="fp", resume=True)
        with store:
            store.record("t1", 2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a clean file must not warn
            repaired = CampaignCheckpoint(path, fingerprint="fp", resume=True)
        assert repaired.completed == {"t0": 1, "t1": 2}

    def test_final_record_missing_newline_survives_resume_cycles(
        self, tmp_path
    ):
        """A crash can flush a record's JSON body without its newline
        (record() issues two buffered writes). The record is complete
        data; the regression was the next append joining two records on
        one line, so a second resume dropped both (and everything
        after) as corrupt."""
        import warnings

        path = tmp_path / "c.ckpt"
        with CampaignCheckpoint(path, fingerprint="fp") as store:
            store.record("t0", 1)
            store.record("t1", 2)
        path.write_bytes(path.read_bytes().rstrip(b"\n"))

        store = CampaignCheckpoint(path, fingerprint="fp", resume=True)
        assert store.completed == {"t0": 1, "t1": 2}  # data kept, not dropped
        with store:
            store.record("t2", 3)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no joined/corrupt lines left
            again = CampaignCheckpoint(path, fingerprint="fp", resume=True)
        assert again.completed == {"t0": 1, "t1": 2, "t2": 3}

    def test_resume_recomputes_tasks_dropped_by_corruption(self, tmp_path):
        """End-to-end: the task behind a corrupt record is re-run on
        resume and the campaign completes with correct results."""
        path = tmp_path / "c.ckpt"
        with CampaignCheckpoint(path, fingerprint="fp") as store:
            CampaignEngine(_square, jobs=1).run(
                [1, 2, 3], task_ids=["a", "b", "c"], checkpoint=store
            )
        # corrupt the final record ("c"), torn mid-write
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:10])
        calls = []

        def worker(x):
            calls.append(x)
            return x * x

        with pytest.warns(CheckpointWarning):
            store = CampaignCheckpoint(path, fingerprint="fp", resume=True)
        with store:
            out = CampaignEngine(worker, jobs=1).run(
                [1, 2, 3], task_ids=["a", "b", "c"], checkpoint=store
            )
        assert out == [1, 4, 9]
        assert calls == [3]  # only the corrupted task re-ran

    def test_engine_skips_completed_tasks(self, tmp_path):
        path = tmp_path / "c.ckpt"
        with CampaignCheckpoint(path, fingerprint="fp") as store:
            store.record("0", 100)  # pre-recorded with a *wrong* value:
        calls = []

        def worker(x):
            calls.append(x)
            return x * x

        store = CampaignCheckpoint(path, fingerprint="fp", resume=True)
        out = CampaignEngine(worker, jobs=1).run(
            [1, 2], task_ids=["0", "1"], checkpoint=store
        )
        # ...proving task "0" was replayed from the store, not re-run.
        assert out == [100, 4]
        assert calls == [2]


class TestSweepFaults:
    def test_worker_exception_propagates_from_run_sweep(self):
        settings_ = sample_settings(1, rng=0, k_values=[4])
        with pytest.raises(SolverError, match="no-such-method"):
            run_sweep(
                settings_, methods=("no-such-method",),
                objectives=("sum",), n_platforms=1, rng=0,
            )

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_checkpoint_resume_round_trip(self, tmp_path, jobs):
        settings_ = sample_settings(2, rng=8, k_values=[4, 5])
        kwargs = dict(
            methods=("greedy", "lprg"), objectives=("maxmin", "sum"),
            n_platforms=2, rng=8,
        )
        path = tmp_path / "sweep.ckpt"
        full = run_sweep(settings_, checkpoint=path, jobs=jobs, **kwargs)

        # interrupt: keep the header and the first completed task only
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")
        resumed = run_sweep(
            settings_, checkpoint=path, resume=True, jobs=jobs, **kwargs
        )
        assert_rows_identical(full, resumed)

    def test_full_resume_recomputes_nothing(self, tmp_path, monkeypatch):
        settings_ = sample_settings(1, rng=4, k_values=[4])
        kwargs = dict(
            methods=("greedy",), objectives=("sum",), n_platforms=2, rng=4,
        )
        path = tmp_path / "sweep.ckpt"
        full = run_sweep(settings_, checkpoint=path, **kwargs)

        import repro.parallel.sweep as sweep_mod

        def forbidden(task):  # pragma: no cover - must not be reached
            raise AssertionError("resume must not re-run completed tasks")

        monkeypatch.setattr(sweep_mod, "run_sweep_task", forbidden)
        monkeypatch.setattr(
            "repro.parallel.run_sweep_task", forbidden
        )
        resumed = run_sweep(
            settings_, checkpoint=path, resume=True, **kwargs
        )
        assert_rows_identical(full, resumed)

    def test_resume_into_different_sweep_fails(self, tmp_path):
        settings_ = sample_settings(1, rng=4, k_values=[4])
        path = tmp_path / "sweep.ckpt"
        run_sweep(settings_, methods=("greedy",), objectives=("sum",),
                  n_platforms=1, rng=4, checkpoint=path)
        with pytest.raises(CheckpointError, match="different campaign"):
            run_sweep(settings_, methods=("greedy",), objectives=("sum",),
                      n_platforms=1, rng=5,  # different seed
                      checkpoint=path, resume=True)

    def test_checkpoint_stores_real_rows(self, tmp_path):
        settings_ = sample_settings(1, rng=4, k_values=[4])
        path = tmp_path / "sweep.ckpt"
        rows = run_sweep(settings_, methods=("greedy",), objectives=("sum",),
                         n_platforms=1, rng=4, checkpoint=path)
        import json
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["kind"] == "campaign" and lines[0]["n_tasks"] == 1
        stored = [r for rec in lines[1:] for r in rec["result"]]
        assert stored == [row_to_dict(r) for r in rows]

    def test_jobs_one_is_the_old_serial_runner(self, monkeypatch):
        """jobs=1 builds no pool and reproduces run_setting exactly."""
        import repro.parallel.engine as engine_mod

        def boom(*a, **k):  # pragma: no cover - must not be reached
            raise AssertionError("jobs=1 must never build a pool")

        monkeypatch.setattr(engine_mod, "ProcessPoolExecutor", boom)
        settings_ = sample_settings(2, rng=6, k_values=[4])
        swept = run_sweep(
            settings_, methods=("greedy", "lpr"), objectives=("maxmin",),
            n_platforms=2, rng=6, jobs=1,
        )
        manual = []
        for setting, seed in zip(settings_, spawn_seed_sequences(6, 2)):
            manual.extend(
                run_setting(
                    setting, methods=("greedy", "lpr"),
                    objectives=("maxmin",), n_platforms=2,
                    rng=np.random.default_rng(seed),
                )
            )
        assert_rows_identical(swept, manual)

    def test_tasks_and_ids_are_stable(self):
        settings_ = sample_settings(2, rng=1, k_values=[4])
        a = build_sweep_tasks(settings_, None, ("greedy",), ("sum",), 2, 1)
        b = build_sweep_tasks(settings_, None, ("greedy",), ("sum",), 2, 1)
        assert [t.task_id for t in a] == ["0/0", "0/1", "1/0", "1/1"]
        assert [t.seed.spawn_key for t in a] == [t.seed.spawn_key for t in b]
