"""Request-coalescing correctness: batching must be invisible.

The coalescer's whole contract is that N concurrent solve requests
answered through one ``solve_many(problems, seeds=...)`` batch are
**bitwise-identical** to answering each alone. The Hypothesis property
drives random request mixes (seeds, problems, arrival interleavings,
batch windows) through a shared coalescer and compares every response
against its serial ``solve(problem, rng=seed)`` reference.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PlatformSpec, SteadyStateProblem, generate_platform
from repro.api import Solver, SolverConfig
from repro.service import RequestCoalescer

CONFIG = SolverConfig(method="greedy")

_SPEC = PlatformSpec(
    n_clusters=4, connectivity=0.6, heterogeneity=0.4,
    mean_g=250.0, mean_bw=30.0, mean_max_connect=10.0,
    speed_heterogeneity=0.4,
)
PROBLEMS = [
    SteadyStateProblem(generate_platform(_SPEC, rng=seed), objective=obj)
    for seed, obj in ((11, "maxmin"), (11, "sum"), (22, "maxmin"))
]


def _signature(report):
    return (
        report.value,
        report.n_lp_solves,
        report.allocation.alpha.tobytes(),
        report.allocation.beta.tobytes(),
    )


def _reference(problem_index: int, seed: int):
    report = Solver(CONFIG).solve(PROBLEMS[problem_index], rng=seed)
    return _signature(report)


@given(
    requests=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=len(PROBLEMS) - 1),
            st.integers(min_value=0, max_value=50),
        ),
        min_size=1,
        max_size=12,
    ),
    stagger=st.lists(
        st.sampled_from([0.0, 0.0, 0.0005, 0.002]), min_size=12, max_size=12
    ),
    max_delay=st.sampled_from([0.0, 0.002, 0.01]),
    max_batch=st.sampled_from([1, 3, 64]),
)
@settings(max_examples=20, deadline=None)
def test_any_interleaving_matches_serial_reference(
    requests, stagger, max_delay, max_batch
):
    coalescer = RequestCoalescer(max_delay=max_delay, max_batch=max_batch)
    solver = Solver(CONFIG)
    futures = []

    def submit(problem_index: int, seed: int, delay: float):
        time.sleep(delay)
        return coalescer.submit(
            "key", solver, PROBLEMS[problem_index], seed
        )

    threads = []
    results: "list" = [None] * len(requests)

    def worker(i, problem_index, seed, delay):
        future = submit(problem_index, seed, delay)
        results[i] = _signature(future.result(timeout=60))

    for i, (problem_index, seed) in enumerate(requests):
        thread = threading.Thread(
            target=worker, args=(i, problem_index, seed, stagger[i])
        )
        threads.append(thread)
        thread.start()
    for thread in threads:
        thread.join(60)

    for (problem_index, seed), signature in zip(requests, results):
        assert signature == _reference(problem_index, seed), (
            "coalesced response differs from the serial solve"
        )


def test_storm_coalesces_into_few_batches():
    """A same-instant storm actually batches (and still answers right)."""
    coalescer = RequestCoalescer(max_delay=0.05, max_batch=128)
    solver = Solver(CONFIG)
    n = 24
    barrier = threading.Barrier(n)
    signatures: "list" = [None] * n

    def worker(i):
        barrier.wait()
        future = coalescer.submit("key", solver, PROBLEMS[0], 7)
        signatures[i] = _signature(future.result(timeout=60))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)

    expected = _reference(0, 7)
    assert all(s == expected for s in signatures)
    stats = coalescer.stats()
    assert stats["coalesced_requests"] == n
    assert stats["batches"] < n  # real coalescing happened
    assert stats["largest_batch"] >= 2


def test_batch_matches_one_explicit_solve_many_call():
    """The storm's responses equal one hand-built solve_many batch."""
    solver = Solver(CONFIG)
    seeds = [3, 14, 15, 9, 26]
    problems = [PROBLEMS[i % len(PROBLEMS)] for i in range(len(seeds))]
    batch = Solver(CONFIG).solve_many(problems, seeds=seeds)

    coalescer = RequestCoalescer(max_delay=0.05, max_batch=len(seeds))
    futures = [
        coalescer.submit("key", solver, problem, seed)
        for problem, seed in zip(problems, seeds)
    ]
    for future, report in zip(futures, batch):
        assert _signature(future.result(timeout=60)) == _signature(report)


def test_distinct_keys_never_share_a_batch():
    coalescer = RequestCoalescer(max_delay=0.02, max_batch=64)
    solver_a, solver_b = Solver(CONFIG), Solver(CONFIG)
    fa = coalescer.submit("a", solver_a, PROBLEMS[0], 1)
    fb = coalescer.submit("b", solver_b, PROBLEMS[1], 2)
    assert _signature(fa.result(timeout=60)) == _reference(0, 1)
    assert _signature(fb.result(timeout=60)) == _reference(1, 2)
    assert coalescer.stats()["batches"] == 2


def test_failing_batch_propagates_to_every_caller():
    class Boom(Exception):
        pass

    class FailingSolver:
        def solve_many(self, problems, seeds=None):
            raise Boom("bad batch")

    coalescer = RequestCoalescer(max_delay=0.02, max_batch=8)
    futures = [
        coalescer.submit("k", FailingSolver(), PROBLEMS[0], i)
        for i in range(3)
    ]
    for future in futures:
        with pytest.raises(Boom):
            future.result(timeout=60)


def test_constructor_validation():
    with pytest.raises(ValueError):
        RequestCoalescer(max_delay=-1)
    with pytest.raises(ValueError):
        RequestCoalescer(max_batch=0)
