"""Unit tests for the revised-simplex core (`repro.lp.revised`) and its
LU-factorized basis (`repro.lp.basis_lu`).

The session-level integration (warm chains, bitwise warm/cold identity,
heuristic wiring) lives in test_lp_session.py; this file exercises the
solver and factorization directly.
"""

import numpy as np
import pytest

from repro.lp.basis_lu import LUBasis, SingularBasisError
from repro.lp.builder import build_lp
from repro.lp.revised import revised_solve
from repro.lp.scipy_backend import solve_lp_scipy
from repro.util.errors import SolverError


class TestLUBasis:
    def _random_system(self, seed, m=8, n=14):
        rng = np.random.default_rng(seed)
        A = rng.normal(size=(m, n))
        basis = rng.permutation(n + m)[:m]
        return A, np.sort(basis)

    @pytest.mark.parametrize("seed", range(4))
    def test_ftran_btran_match_dense(self, seed):
        A, basis = self._random_system(seed)
        m = A.shape[0]
        lu = LUBasis(A, basis)
        B = np.column_stack(
            [A[:, j] if j < A.shape[1] else np.eye(m)[:, j - A.shape[1]]
             for j in basis]
        )
        v = np.random.default_rng(seed + 100).normal(size=m)
        np.testing.assert_allclose(lu.ftran(v), np.linalg.solve(B, v),
                                   rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(lu.btran(v), np.linalg.solve(B.T, v),
                                   rtol=1e-9, atol=1e-11)

    def test_eta_updates_track_column_replacements(self):
        A, basis = self._random_system(3)
        m, n = A.shape
        lu = LUBasis(A, basis, refactor_every=64)
        rng = np.random.default_rng(7)
        for _ in range(10):
            r = int(rng.integers(m))
            candidates = np.setdiff1d(np.arange(n + m), lu.basis)
            j = int(rng.choice(candidates))
            w = lu.ftran(lu.column(j))
            if abs(w[r]) < 1e-6:
                continue
            lu.replace_column(r, j, w)
            B = np.column_stack(
                [A[:, k] if k < n else np.eye(m)[:, k - n] for k in lu.basis]
            )
            v = rng.normal(size=m)
            np.testing.assert_allclose(lu.ftran(v), np.linalg.solve(B, v),
                                       rtol=1e-8, atol=1e-10)
        assert lu.n_updates == lu.updates_since_refactor + 0  # file grew
        lu.refactorize()
        assert lu.updates_since_refactor == 0

    def test_refactor_every_bounds_eta_file(self):
        A, basis = self._random_system(5)
        m, n = A.shape
        lu = LUBasis(A, basis, refactor_every=3)
        rng = np.random.default_rng(11)
        for _ in range(12):
            r = int(rng.integers(m))
            candidates = np.setdiff1d(np.arange(n + m), lu.basis)
            j = int(rng.choice(candidates))
            w = lu.ftran(lu.column(j))
            if abs(w[r]) < 1e-6:
                continue
            lu.replace_column(r, j, w)
            assert lu.updates_since_refactor <= 3

    def test_singular_basis_raises(self):
        A = np.array([[1.0, 2.0], [2.0, 4.0]])  # rank-1 structural part
        with pytest.raises(SingularBasisError):
            LUBasis(A, np.array([0, 1]))

    def test_matches_requires_same_matrix_object_and_basis(self):
        A, basis = self._random_system(0)
        lu = LUBasis(A, basis)
        assert lu.matches(A, basis)
        assert not lu.matches(A.copy(), basis)
        other = basis.copy()
        other[0] = [c for c in range(A.shape[1]) if c not in set(basis)][0]
        assert not lu.matches(A, other)


class TestRevisedBasics:
    def test_textbook_max(self):
        res = revised_solve([3.0, 5.0], [[1, 0], [0, 2], [3, 2]],
                            [4, 12, 18])
        assert res.ok
        assert res.value == pytest.approx(36.0)
        np.testing.assert_allclose(res.x, [2.0, 6.0])

    def test_native_upper_bounds_no_extra_rows(self):
        # maximize x + y, x + y <= 10, x <= 3, y <= 2 (as *bounds*):
        # the revised engine keeps m = 1.
        res = revised_solve([1.0, 1.0], [[1.0, 1.0]], [10.0],
                            bounds=[(0, 3), (0, 2)])
        assert res.ok
        assert res.value == pytest.approx(5.0)
        assert res.basis is not None and res.basis.shape == (1,)

    def test_bound_flip_path(self):
        # Optimum has both variables at their upper bounds while the
        # slack stays basic: reaching it needs bound flips, not pivots.
        res = revised_solve([1.0, 1.0], [[1.0, 1.0]], [100.0],
                            bounds=[(0, 1), (0, 1)])
        assert res.ok
        assert res.value == pytest.approx(2.0)
        assert res.at_upper[:2].all()

    def test_unbounded_detected(self):
        res = revised_solve([1.0], np.zeros((1, 1)), [1.0])
        assert res.status == "unbounded"

    def test_infeasible_detected(self):
        res = revised_solve([1.0], [[-1.0], [1.0]], [-5.0, 2.0])
        assert res.status == "infeasible"

    def test_phase1_dual_cold_start(self):
        # x >= 3 via -x <= -3: the all-slack basis is primal-infeasible,
        # so the cold start must route through the dual phase 1.
        res = revised_solve([-1.0], [[-1.0]], [-3.0], bounds=[(0, 10)])
        assert res.ok
        assert res.x[0] == pytest.approx(3.0)
        assert res.dual_steps > 0

    def test_crossed_bounds_infeasible(self):
        res = revised_solve([1.0], [[1.0]], [1.0], bounds=[(2.0, 1.0)])
        assert res.status == "infeasible"

    def test_infinite_lower_bound_rejected(self):
        with pytest.raises(SolverError):
            revised_solve([1.0], [[1.0]], [1.0], bounds=[(-np.inf, 1.0)])

    def test_shape_validation(self):
        with pytest.raises(SolverError):
            revised_solve([1.0, 2.0], [[1.0]], [1.0])


class TestRevisedAgainstHiGHSRandom:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_bounded_lps(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        m = int(rng.integers(1, 6))
        A = rng.normal(size=(m, n))
        b = rng.uniform(-0.5, 3.0, size=m)
        c = rng.normal(size=n)
        lb = np.zeros(n)
        ub = np.where(rng.uniform(size=n) < 0.5,
                      rng.uniform(0.5, 4.0, size=n), np.inf)
        res = revised_solve(c, A, b, (lb, ub))
        from scipy.optimize import linprog

        ref = linprog(-c, A_ub=A, b_ub=b,
                      bounds=list(zip(lb, np.where(np.isfinite(ub), ub, None))),
                      method="highs")
        if ref.status in (2, 3):
            # HiGHS presolve reports some unbounded problems as status
            # 2 ("infeasible"); either non-optimal verdict is fine as
            # long as we also declare the problem unsolvable.
            assert res.status in ("infeasible", "unbounded")
        else:
            assert res.ok
            assert res.value == pytest.approx(-ref.fun, rel=1e-7, abs=1e-7)


class TestRevisedWarmStart:
    def _lp(self):
        c = np.array([3.0, 2.0, 4.0])
        A = np.array([[1.0, 1.0, 2.0], [2.0, 0.0, 1.0], [0.0, 1.0, 1.0]])
        b = np.array([10.0, 8.0, 6.0])
        bounds = (np.zeros(3), np.array([6.0, 6.0, 6.0]))
        return c, A, b, bounds

    def test_resolve_after_rhs_tightening_uses_dual_repair(self):
        c, A, b, bounds = self._lp()
        first = revised_solve(c, A, b, bounds)
        assert first.ok
        tightened = b * 0.8
        warm = revised_solve(c, A, tightened, bounds,
                             initial_basis=first.basis,
                             initial_at_upper=first.at_upper)
        cold = revised_solve(c, A, tightened, bounds)
        assert warm.ok and cold.ok
        assert warm.warm_started
        assert warm.value == pytest.approx(cold.value, rel=1e-9)
        assert warm.iterations <= cold.iterations

    def test_fixed_basic_variable_is_ejected_exactly(self):
        c, A, b, bounds = self._lp()
        first = revised_solve(c, A, b, bounds)
        assert first.ok
        # Pin a variable that is basic in the first optimum.
        basic_structural = [j for j in first.basis if j < 3]
        var = int(basic_structural[0])
        lb, ub = bounds[0].copy(), bounds[1].copy()
        pinned = float(np.floor(first.x[var]))
        lb[var] = ub[var] = pinned
        warm = revised_solve(c, A, b, (lb, ub),
                             initial_basis=first.basis,
                             initial_at_upper=first.at_upper)
        assert warm.ok
        assert warm.warm_started
        assert warm.x[var] == pinned  # bit-exact, not approximate
        assert var not in set(int(j) for j in warm.basis)

    def test_initial_lu_reused_when_basis_unchanged(self):
        c, A, b, bounds = self._lp()
        first = revised_solve(c, A, b, bounds)
        assert first.ok and first.lu is not None
        again = revised_solve(c, A, b, bounds,
                              initial_basis=first.basis,
                              initial_at_upper=first.at_upper,
                              initial_lu=first.lu)
        assert again.ok
        # Zero pivots needed, so the adopted factorization was never
        # redone: the result carries the very same LUBasis object.
        assert again.lu is first.lu
        assert again.iterations == 0

    def test_stale_lu_is_ignored(self):
        c, A, b, bounds = self._lp()
        first = revised_solve(c, A, b, bounds)
        other = revised_solve(c, A.copy(), b, bounds)
        assert first.ok and other.ok
        # LU over a different matrix object never matches.
        res = revised_solve(c, A, b, bounds,
                            initial_basis=first.basis,
                            initial_at_upper=first.at_upper,
                            initial_lu=other.lu)
        assert res.ok
        assert res.value == pytest.approx(first.value, rel=1e-12)

    def test_garbage_basis_falls_back_cold(self):
        c, A, b, bounds = self._lp()
        res = revised_solve(c, A, b, bounds,
                            initial_basis=np.array([0, 0, 0]))
        assert res.ok
        assert not res.warm_started


class TestCanonicalVertex:
    def test_degenerate_face_reported_identically(self):
        # maximize x + y over x + y <= 1 (a whole optimal facet), with
        # a generic secondary objective: warm and cold runs must report
        # the same vertex bitwise.
        c = np.array([1.0, 1.0])
        A = np.array([[1.0, 1.0]])
        b = np.array([1.0])
        bounds = (np.zeros(2), np.array([1.0, 1.0]))
        weights = np.array([1.3, 1.7])
        cold = revised_solve(c, A, b, bounds, canon_weights=weights)
        assert cold.ok
        # Start a second solve from a *different* vertex of the facet:
        # basis = {y} instead of whatever cold chose.
        warm = revised_solve(c, A, b, bounds,
                             initial_basis=np.array([1]),
                             canon_weights=weights)
        assert warm.ok
        assert np.array_equal(cold.x, warm.x)
        # The canonical vertex maximises the secondary weights: y wins.
        np.testing.assert_allclose(cold.x, [0.0, 1.0])


class TestOnPaperInstances:
    @pytest.mark.parametrize("objective", ["sum", "maxmin"])
    def test_matches_highs_on_program7(self, problem_factory, objective):
        problem = problem_factory(seed=0, n_clusters=5, objective=objective)
        inst = build_lp(problem)
        ref = solve_lp_scipy(inst)
        res = revised_solve(inst.obj, inst.A_ub.toarray(), inst.b_ub,
                            (inst.lb, inst.ub))
        assert res.ok
        assert res.value == pytest.approx(ref.value, rel=1e-7, abs=1e-7)

    def test_warm_chain_matches_highs(self, problem_factory):
        """An LPRR-style chain of beta pins, each re-solve warm-started
        from the previous basis, must track fresh HiGHS throughout."""
        problem = problem_factory(seed=1, n_clusters=5)
        inst = build_lp(problem)
        A = inst.A_ub.toarray()
        lb, ub = inst.lb.copy(), inst.ub.copy()
        res = revised_solve(inst.obj, A, inst.b_ub, (lb, ub))
        assert res.ok
        n_alpha = inst.index.n_alpha
        for var in range(n_alpha, min(n_alpha + 6, inst.n_vars)):
            lb[var] = ub[var] = float(np.floor(res.x[var]))
            res = revised_solve(inst.obj, A, inst.b_ub, (lb, ub),
                                initial_basis=res.basis,
                                initial_at_upper=res.at_upper,
                                initial_lu=res.lu)
            assert res.ok
            assert res.warm_started
            np.copyto(inst.lb, lb)
            np.copyto(inst.ub, ub)
            inst.invalidate_bounds()
            ref = solve_lp_scipy(inst)
            assert res.value == pytest.approx(ref.value, rel=1e-7, abs=1e-7)
