"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import (
    child_seed_sequence,
    ensure_rng,
    seed_sequence_of,
    spawn_rngs,
    spawn_seed_sequences,
)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed(self):
        gen = ensure_rng(np.int64(5))
        assert isinstance(gen, np.random.Generator)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        a, b = spawn_rngs(123, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_deterministic_from_seed(self):
        first = [g.random(3) for g in spawn_rngs(9, 3)]
        second = [g.random(3) for g in spawn_rngs(9, 3)]
        for x, y in zip(first, second):
            assert np.array_equal(x, y)

    def test_spawn_from_generator_advances(self):
        gen = np.random.default_rng(5)
        first = spawn_rngs(gen, 2)
        second = spawn_rngs(gen, 2)
        # Repeated spawning from the same generator yields fresh streams.
        assert not np.array_equal(first[0].random(4), second[0].random(4))


class TestStatelessSpawn:
    """The seed derivation the sweep runner and parallel engine share.

    These pins are load-bearing: campaign checkpoints, serial/parallel
    equivalence and cross-version reproducibility all assume that the
    seed of (grid point i, replicate j) under root seed s is exactly
    ``SeedSequence(s, spawn_key=(i, j))`` — NumPy's own spawn-child
    construction, derived without mutating any parent state (and never
    an arithmetic ``s + i`` style offset, which correlates streams).
    """

    def test_matches_numpy_spawn(self):
        root = np.random.SeedSequence(7)
        spawned = np.random.SeedSequence(7).spawn(3)
        stateless = spawn_seed_sequences(7, 3)
        for a, b in zip(spawned, stateless):
            assert a.entropy == b.entropy and a.spawn_key == b.spawn_key
            assert np.array_equal(
                np.random.default_rng(a).random(8),
                np.random.default_rng(b).random(8),
            )
        assert root.n_children_spawned == 0  # root untouched

    def test_repeated_calls_are_identical(self):
        gen = np.random.default_rng(5)
        first = spawn_seed_sequences(gen, 2)
        gen.random(100)  # drawing must not perturb derivation
        second = spawn_seed_sequences(gen, 2)
        for a, b in zip(first, second):
            assert a.spawn_key == b.spawn_key
            assert np.array_equal(
                np.random.default_rng(a).random(4),
                np.random.default_rng(b).random(4),
            )

    def test_derivation_regression_pin(self):
        """First draw of each child of seed 123, pinned forever."""
        children = spawn_seed_sequences(123, 3)
        assert [c.spawn_key for c in children] == [(0,), (1,), (2,)]
        draws = [
            int(np.random.default_rng(c).integers(2**32)) for c in children
        ]
        assert draws == [4121090875, 3176498473, 37666016]

    def test_nested_derivation_regression_pin(self):
        """Grid point 1, replicate 2 under root 123: spawn_key (1, 2)."""
        grandchild = child_seed_sequence(
            child_seed_sequence(np.random.SeedSequence(123), 1), 2
        )
        assert grandchild.spawn_key == (1, 2)
        assert int(
            np.random.default_rng(grandchild).integers(2**32)
        ) == 2121478275

    def test_seed_sequence_of_coercions(self):
        ss = np.random.SeedSequence(9)
        assert seed_sequence_of(ss) is ss
        assert seed_sequence_of(9).entropy == 9
        assert seed_sequence_of(np.random.default_rng(9)).entropy == 9
        assert isinstance(seed_sequence_of(None), np.random.SeedSequence)
        with pytest.raises(TypeError):
            seed_sequence_of("nope")

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            spawn_seed_sequences(0, -1)
        with pytest.raises(ValueError):
            child_seed_sequence(np.random.SeedSequence(0), -1)
