"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed(self):
        gen = ensure_rng(np.int64(5))
        assert isinstance(gen, np.random.Generator)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        a, b = spawn_rngs(123, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_deterministic_from_seed(self):
        first = [g.random(3) for g in spawn_rngs(9, 3)]
        second = [g.random(3) for g in spawn_rngs(9, 3)]
        for x, y in zip(first, second):
            assert np.array_equal(x, y)

    def test_spawn_from_generator_advances(self):
        gen = np.random.default_rng(5)
        first = spawn_rngs(gen, 2)
        second = spawn_rngs(gen, 2)
        # Repeated spawning from the same generator yields fresh streams.
        assert not np.array_equal(first[0].random(4), second[0].random(4))
