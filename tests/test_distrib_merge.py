"""Shard planning + merge-layer correctness (repro.distrib).

The load-bearing property pinned here is **partition invariance**:
merging the per-shard aggregates of *any* contiguous partition of a
campaign's task list — empty shards, single-task shards, more shards
than tasks — equals :meth:`SweepAccumulator.from_rows` over the full
row list **bitwise** (the accumulator algebra merges by exact integer
arithmetic, so shard boundaries can never move a single bit). On top of
that: manifest round-trips, planner laws, and the merge layer's
refusal modes (incomplete shards, foreign campaigns, gaps).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.distrib import (
    ShardError,
    ShardManifest,
    build_shard_manifests,
    load_manifests,
    merge_accumulators,
    merge_shards,
    plan_shards,
    run_shard,
    write_manifests,
)
from repro.experiments import sample_settings
from repro.experiments.config import DEFAULT_SCENARIO
from repro.parallel.stream import SweepAccumulator
from repro.util.rng import seed_sequence_of

from tests.strategies import shard_partitions, sweep_shapes
from tests.test_stream_equivalence import synthetic_task_rows, synthetic_tasks


def dumps(tables: dict) -> str:
    return json.dumps(tables, sort_keys=True)


class TestPlanShards:
    @given(
        n_tasks=st.integers(min_value=0, max_value=200),
        n_shards=st.integers(min_value=1, max_value=24),
    )
    def test_contiguous_balanced_cover(self, n_tasks, n_shards):
        ranges = plan_shards(n_tasks, n_shards)
        assert len(ranges) == n_shards
        expected = 0
        for start, stop in ranges:
            assert start == expected and stop >= start
            expected = stop
        assert expected == n_tasks
        sizes = [stop - start for start, stop in ranges]
        assert max(sizes) - min(sizes) <= 1  # balanced
        assert sizes == sorted(sizes, reverse=True)  # extras go first

    def test_more_shards_than_tasks_yields_empty_tails(self):
        assert plan_shards(2, 4) == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_invalid_inputs_are_refused(self):
        with pytest.raises(ShardError, match="n_shards"):
            plan_shards(5, 0)
        with pytest.raises(ShardError, match="n_tasks"):
            plan_shards(-1, 2)


class TestPartitionInvariance:
    """merge(fold(part) for part in partition) == from_rows(all), bitwise."""

    @hyp_settings(max_examples=40)
    @given(shape=sweep_shapes(), data=st.data())
    def test_any_partition_merges_bitwise(self, shape, data):
        tasks = synthetic_tasks(shape)
        all_rows = [row for t in tasks for row in synthetic_task_rows(t)]
        reference = SweepAccumulator.from_rows(
            all_rows, methods=shape["methods"], objectives=shape["objectives"]
        )
        partition = data.draw(shard_partitions(len(tasks)))
        parts = []
        for start, stop in partition:
            part = SweepAccumulator()
            for task in tasks[start:stop]:
                part.fold_task(synthetic_task_rows(task))
            parts.append(part)
        merged = merge_accumulators(parts)
        # bitwise: the state dicts (exact integer sums) must be equal,
        # not merely the rounded tables
        assert merged.state_dict() == reference.state_dict()
        assert dumps(merged.tables()) == dumps(reference.tables())

    @hyp_settings(max_examples=20)
    @given(shape=sweep_shapes(), data=st.data())
    def test_merge_accepts_state_dicts_via_json(self, shape, data):
        """Shard states travel as JSON files; round-tripping each part
        through json must not cost a bit."""
        tasks = synthetic_tasks(shape)
        partition = data.draw(shard_partitions(len(tasks), max_shards=4))
        parts = []
        for start, stop in partition:
            part = SweepAccumulator()
            for task in tasks[start:stop]:
                part.fold_task(synthetic_task_rows(task))
            parts.append(json.loads(json.dumps(part.state_dict())))
        whole = SweepAccumulator()
        for task in tasks:
            whole.fold_task(synthetic_task_rows(task))
        assert merge_accumulators(parts).state_dict() == whole.state_dict()

    def test_empty_partition_parts_are_exact_noops(self):
        shape = dict(n_settings=2, n_replicates=2, methods=("greedy",),
                     objectives=("sum",), seed=11)
        tasks = synthetic_tasks(shape)
        whole = SweepAccumulator()
        for task in tasks:
            whole.fold_task(synthetic_task_rows(task))
        parts = [SweepAccumulator()]  # leading empty shard
        for task in tasks:
            part = SweepAccumulator()  # single-task shards
            part.fold_task(synthetic_task_rows(task))
            parts.append(part)
            parts.append(SweepAccumulator())  # interleaved empty shards
        assert merge_accumulators(parts).state_dict() == whole.state_dict()


@pytest.fixture(scope="module")
def tiny_campaign():
    """A 2-task real campaign definition (cheap: greedy + LP bound only)."""
    return dict(
        settings=sample_settings(2, rng=5, k_values=[3]),
        scenario=DEFAULT_SCENARIO,
        methods=("greedy",),
        objectives=("maxmin",),
        n_platforms=1,
        root=seed_sequence_of(5),
    )


def _plan(campaign, tmp_path, n_shards, row_sink=None):
    manifests = build_shard_manifests(
        campaign["settings"], campaign["scenario"], campaign["methods"],
        campaign["objectives"], campaign["n_platforms"], campaign["root"],
        n_shards=n_shards, shard_dir=tmp_path, row_sink=row_sink,
    )
    write_manifests(manifests, tmp_path)
    return manifests


class TestManifests:
    def test_round_trip_and_identity(self, tiny_campaign, tmp_path):
        manifests = _plan(tiny_campaign, tmp_path, 2)
        loaded = load_manifests(tmp_path)
        assert [m.to_dict() for m in loaded] == [m.to_dict() for m in manifests]
        assert loaded[0].fingerprint != loaded[1].fingerprint  # per-shard
        assert (
            loaded[0].campaign_fingerprint == loaded[1].campaign_fingerprint
        )

    def test_shard_tasks_slice_the_campaign_seed_derivation(
        self, tiny_campaign, tmp_path
    ):
        """Sharding must not change a task's id or seed: the shard
        slices are exactly the unsharded task list."""
        from repro.parallel.sweep import build_sweep_tasks

        manifests = _plan(tiny_campaign, tmp_path, 2)
        full = build_sweep_tasks(
            tiny_campaign["settings"], tiny_campaign["scenario"],
            tiny_campaign["methods"], tiny_campaign["objectives"],
            tiny_campaign["n_platforms"], tiny_campaign["root"],
        )
        sliced = [t for m in manifests for t in m.shard_tasks()]
        assert [t.task_id for t in sliced] == [t.task_id for t in full]
        for a, b in zip(sliced, full):
            assert a.seed.entropy == b.seed.entropy
            assert a.seed.spawn_key == b.seed.spawn_key

    def test_bad_manifest_files_are_refused(self, tmp_path):
        missing = tmp_path / "nope.manifest.json"
        with pytest.raises(ShardError, match="does not exist"):
            ShardManifest.load(missing)
        bad = tmp_path / "bad.manifest.json"
        bad.write_text("{not json")
        with pytest.raises(ShardError, match="not valid JSON"):
            ShardManifest.load(bad)
        wrong_kind = tmp_path / "kind.manifest.json"
        wrong_kind.write_text(json.dumps({"kind": "other"}))
        with pytest.raises(ShardError, match="not a shard manifest"):
            ShardManifest.load(wrong_kind)
        with pytest.raises(ShardError, match="no shard manifests"):
            load_manifests(tmp_path / "empty-dir")

    def test_invalid_ranges_are_refused(self, tiny_campaign, tmp_path):
        manifest = _plan(tiny_campaign, tmp_path, 2)[0]
        data = manifest.to_dict()
        data["task_stop"] = 99
        with pytest.raises(ShardError, match="task range"):
            ShardManifest.from_dict(data)
        data = manifest.to_dict()
        data["shard_index"] = 7
        with pytest.raises(ShardError, match="out of range"):
            ShardManifest.from_dict(data)


class TestMergeShardsOnDisk:
    """The disk-level merge path over real (tiny) shard runs."""

    @pytest.fixture(scope="class")
    def reference(self, tiny_campaign):
        from repro.experiments import run_sweep

        rows = run_sweep(
            tiny_campaign["settings"],
            scenario=tiny_campaign["scenario"],
            methods=tiny_campaign["methods"],
            objectives=tiny_campaign["objectives"],
            n_platforms=tiny_campaign["n_platforms"],
            rng=5,
        )
        return SweepAccumulator.from_rows(
            rows,
            methods=tiny_campaign["methods"],
            objectives=tiny_campaign["objectives"],
        )

    def _tables_sans_runtime(self, agg):
        tables = agg.tables()
        tables.pop("runtime_mean_by_k")
        return tables

    @pytest.mark.parametrize("n_shards", [1, 2, 5])
    def test_shard_count_never_changes_a_bit(
        self, tiny_campaign, tmp_path, reference, n_shards
    ):
        """Covers single-task shards (n=2) and shard-count > task-count
        (n=5: three empty shards) against the serial reference."""
        manifests = _plan(tiny_campaign, tmp_path, n_shards)
        for manifest in manifests:
            run_shard(manifest)
        merged = merge_shards(manifests)
        assert merged.n_tasks == 2
        assert dumps(self._tables_sans_runtime(merged)) == dumps(
            self._tables_sans_runtime(reference)
        )

    def test_unrun_shard_is_refused(self, tiny_campaign, tmp_path):
        manifests = _plan(tiny_campaign, tmp_path, 2)
        run_shard(manifests[0])  # shard 1 never runs
        with pytest.raises(ShardError, match="no state sidecar"):
            merge_shards(manifests)

    def test_incomplete_shard_is_refused(self, tiny_campaign, tmp_path):
        manifests = _plan(tiny_campaign, tmp_path, 1)
        run_shard(manifests[0])
        state_path = manifests[0].state_path
        record = json.loads(state_path.read_text())
        record["state"]["n_folded"] = 1  # pretend the kill hit mid-run
        state_path.write_text(json.dumps(record))
        with pytest.raises(ShardError, match="incomplete"):
            merge_shards(manifests)

    def test_foreign_sidecar_is_refused(self, tiny_campaign, tmp_path):
        manifests = _plan(tiny_campaign, tmp_path, 1)
        run_shard(manifests[0])
        state_path = manifests[0].state_path
        record = json.loads(state_path.read_text())
        record["fingerprint"] = "someone-elses-campaign"
        state_path.write_text(json.dumps(record))
        with pytest.raises(ShardError, match="different shard/campaign"):
            merge_shards(manifests)

    def test_mixed_campaigns_and_gaps_are_refused(
        self, tiny_campaign, tmp_path
    ):
        manifests = _plan(tiny_campaign, tmp_path, 2)
        with pytest.raises(ShardError, match="zero shard manifests"):
            merge_shards([])
        with pytest.raises(ShardError, match="covered by no shard"):
            merge_shards(manifests[:1])  # missing shard 1's task range
        foreign = ShardManifest.from_dict(
            {**manifests[1].to_dict(), "campaign_fingerprint": "other"}
        )
        with pytest.raises(ShardError, match="different campaign"):
            merge_shards([manifests[0], foreign])
