"""Tests for the Section-6 experiment harness."""

import numpy as np
import pytest

from repro.experiments import (
    PAPER_GRID,
    Scenario,
    Setting,
    figure5,
    figure6,
    figure7,
    grid_size,
    headline_ratios,
    iter_grid,
    lpr_failure_stats,
    mean_ratio_by_k,
    render_figure,
    run_setting,
    run_sweep,
    sample_settings,
    spec_for,
)
from repro.experiments.aggregate import pairwise_value_ratio, runtime_by_k
from repro.experiments.config import DEFAULT_SCENARIO, LITERAL_SCENARIO, payoffs_for


def _setting(k=5, **overrides):
    defaults = dict(
        k=k, connectivity=0.6, heterogeneity=0.4, mean_g=250.0,
        mean_bw=30.0, mean_maxcon=15.0,
    )
    defaults.update(overrides)
    return Setting(**defaults)


class TestGrid:
    def test_table1_dimensions(self):
        assert PAPER_GRID["K"] == tuple(range(5, 96, 10))
        assert len(PAPER_GRID["connectivity"]) == 8
        assert len(PAPER_GRID["heterogeneity"]) == 4
        assert len(PAPER_GRID["mean_g"]) == 4
        assert len(PAPER_GRID["mean_bw"]) == 9
        assert len(PAPER_GRID["mean_maxcon"]) == 10

    def test_grid_size(self):
        assert grid_size() == 10 * 8 * 4 * 4 * 9 * 10

    def test_iter_grid_first_element(self):
        first = next(iter_grid())
        assert first.k == 5 and first.connectivity == 0.1

    def test_sample_settings_stratified(self):
        settings = sample_settings(10, rng=0, k_values=[5, 15])
        ks = [s.k for s in settings]
        assert ks == [5, 15] * 5

    def test_sample_settings_values_from_grid(self):
        for s in sample_settings(20, rng=1):
            assert s.connectivity in PAPER_GRID["connectivity"]
            assert s.mean_g in PAPER_GRID["mean_g"]

    def test_spec_for_applies_scenario(self):
        setting = _setting(heterogeneity=0.6)
        spec = spec_for(setting, DEFAULT_SCENARIO)
        assert spec.speed_heterogeneity == 0.6
        literal = spec_for(setting, LITERAL_SCENARIO)
        assert literal.speed_heterogeneity == 0.0

    def test_payoffs_for_band(self):
        setting = _setting(k=50)
        payoffs = payoffs_for(setting, DEFAULT_SCENARIO, rng=0)
        assert payoffs.shape == (50,)
        assert np.all(payoffs >= 0.8) and np.all(payoffs <= 1.2)
        literal = payoffs_for(setting, LITERAL_SCENARIO, rng=0)
        assert np.all(literal == 1.0)

    def test_setting_as_dict(self):
        d = _setting().as_dict()
        assert d["K"] == 5 and "mean_bw" in d


class TestRunner:
    def test_rows_structure(self):
        rows = run_setting(
            _setting(), methods=("greedy",), objectives=("maxmin",),
            n_platforms=2, rng=0,
        )
        # 2 platforms x (lp + greedy) x 1 objective
        assert len(rows) == 4
        methods = {r.method for r in rows}
        assert methods == {"lp", "greedy"}

    def test_lp_bound_attached_to_all_rows(self):
        rows = run_setting(
            _setting(), methods=("greedy", "lpr"), objectives=("sum",),
            n_platforms=1, rng=1,
        )
        lp_values = {r.lp_value for r in rows}
        assert len(lp_values) == 1
        for r in rows:
            assert r.ratio <= 1.0 + 1e-6

    def test_deterministic_given_seed(self):
        a = run_setting(_setting(), n_platforms=1, rng=5)
        b = run_setting(_setting(), n_platforms=1, rng=5)
        assert [r.value for r in a] == [r.value for r in b]

    def test_literal_scenario_is_trivial(self):
        """The paper-literal setup (all speeds 100, payoffs 1) is solved
        optimally by every heuristic — the observation that forced our
        calibrated scenario (DESIGN.md note 7 / EXPERIMENTS.md)."""
        rows = run_setting(
            _setting(k=6), scenario=LITERAL_SCENARIO,
            methods=("greedy", "lprg"), objectives=("maxmin", "sum"),
            n_platforms=2, rng=3,
        )
        for r in rows:
            assert r.ratio == pytest.approx(1.0, abs=1e-6)

    def test_run_sweep_concatenates(self):
        rows = run_sweep(
            [_setting(), _setting(k=7)],
            methods=("greedy",), objectives=("maxmin",), n_platforms=1, rng=0,
        )
        assert {r.setting.k for r in rows} == {5, 7}


class TestAggregates:
    @pytest.fixture(scope="class")
    def rows(self):
        settings = [_setting(k=4), _setting(k=6)]
        return run_sweep(
            settings, methods=("greedy", "lpr", "lprg"),
            objectives=("maxmin", "sum"), n_platforms=2, rng=7,
        )

    def test_mean_ratio_by_k(self, rows):
        series = mean_ratio_by_k(rows, "lprg", "maxmin")
        assert [k for k, _ in series] == [4, 6]
        assert all(0.0 <= v <= 1.0 + 1e-6 for _, v in series)

    def test_headline_ratios_dominate_one(self, rows):
        ratios = headline_ratios(rows)
        # LPRG >= LPR always, and in practice >= G on average here.
        assert ratios["maxmin"] > 0.0
        assert ratios["sum"] > 0.0

    def test_lpr_failure_stats(self, rows):
        stats = lpr_failure_stats(rows)
        assert 0.0 <= stats["zero_fraction"] <= 1.0
        assert stats["mean_ratio"] <= 1.0 + 1e-6

    def test_pairwise_requires_matching_rows(self, rows):
        with pytest.raises(ValueError):
            pairwise_value_ratio(rows, "lprg", "milp", "maxmin")

    def test_runtime_by_k(self, rows):
        series = runtime_by_k(rows, "lprg", "maxmin")
        assert len(series) == 2 and all(v >= 0 for _, v in series)


class TestFigures:
    def test_figure5_smoke(self):
        fig = figure5(k_values=(4, 6), settings_per_k=1, platforms_per_setting=1, rng=0)
        assert set(fig.series) == {
            "MAXMIN(LPRG)/LP", "SUM(LPRG)/LP", "MAXMIN(GREEDY)/LP", "SUM(GREEDY)/LP",
        }
        assert "headline_lprg_over_g" in fig.notes
        text = render_figure(fig)
        assert "Figure 5" in text and "MAXMIN(LPRG)/LP" in text

    def test_figure6_smoke(self):
        fig = figure6(k_values=(4,), settings_per_k=1, platforms_per_setting=1, rng=0)
        assert "MAXMIN(LPRR)/LP" in fig.series
        assert fig.notes["n_topologies"] == 1

    def test_figure7_smoke(self):
        fig = figure7(k_values=(4, 5), settings_per_k=1, platforms_per_setting=1, rng=0)
        assert fig.logy
        assert "GREEDY" in fig.series and "LPRR" in fig.series
        assert "lprr_over_lprg" in fig.notes
        text = render_figure(fig)
        assert "log10(y)" in text

    def test_figure7_without_lprr(self):
        fig = figure7(
            k_values=(4,), settings_per_k=1, platforms_per_setting=1,
            include_lprr=False, rng=0,
        )
        assert "LPRR" not in fig.series
