"""Property: supervised recovery is invisible in the result.

For ANY recoverable fault schedule (transient task errors, worker
crashes, shard kills with torn checkpoint tails or dropped state
sidecars, zero-second stalls), any shard count, and an optional
mid-campaign steal of a killed shard, the supervised sharded campaign
must converge to the **state-dict-exact** aggregate of the fault-free
serial fold. Faults and recovery may only cost wall-clock time — never
a bit of the result.

Recoverable means: transient rules fire at most ``max_attempts - 1``
times per identity and nothing injects a deterministic (quarantining)
failure. Quarantine behaviour is pinned separately in
``tests/test_supervise.py``.
"""

from __future__ import annotations

import tempfile
import warnings
from pathlib import Path

import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.distrib import (
    InlineShardExecutor,
    ShardSupervisor,
    SupervisionOptions,
    build_shard_manifests,
    load_manifests,
    merge_shards,
    run_shard,
    steal_shard,
    write_manifests,
)
from repro.experiments import sample_settings
from repro.experiments.config import DEFAULT_SCENARIO
from repro.parallel import build_sweep_tasks
from repro.parallel.checkpoint import CheckpointWarning
from repro.parallel.engine import RetryPolicy
from repro.parallel.stream import SweepAccumulator
from repro.util.faults import FAULT_PLAN_ENV, FaultPlan, FaultRule
from repro.util.rng import seed_sequence_of

from tests.test_stream_equivalence import synthetic_task_rows

MAX_ATTEMPTS = 3
CAMPAIGN = dict(
    settings=sample_settings(3, rng=13, k_values=[3, 4]),
    scenario=DEFAULT_SCENARIO,
    methods=("greedy",),
    objectives=("maxmin",),
    n_platforms=2,
    root=seed_sequence_of(13),
)
N_TASKS = 6
TASK_IDS = [f"{i}/{j}" for i in range(3) for j in range(2)]


def fake_sweep_worker(task):
    return synthetic_task_rows(
        (task.setting_index, task.replicate, task.methods,
         task.objectives, 99)
    )


def _reference_state() -> dict:
    tasks = build_sweep_tasks(
        CAMPAIGN["settings"], CAMPAIGN["scenario"], CAMPAIGN["methods"],
        CAMPAIGN["objectives"], CAMPAIGN["n_platforms"], CAMPAIGN["root"],
    )
    acc = SweepAccumulator()
    for task in tasks:
        acc.fold_task(fake_sweep_worker(task))
    return acc.state_dict()


REFERENCE = _reference_state()


# ----------------------------------------------------------------------
# recoverable fault schedules
# ----------------------------------------------------------------------

@st.composite
def task_rules(draw):
    """Transient-only task rules that cannot exhaust MAX_ATTEMPTS."""
    times = draw(st.integers(min_value=1, max_value=MAX_ATTEMPTS - 1))
    if draw(st.booleans()):
        return FaultRule(
            scope="task", fault="error",
            match=draw(st.sampled_from(TASK_IDS)), times=times,
        )
    return FaultRule(
        scope="task", fault="error",
        p=draw(st.sampled_from([0.25, 0.5, 0.9])), times=times,
    )


@st.composite
def shard_rules(draw, n_shards):
    kind = draw(st.sampled_from(["kill", "stall"]))
    match = draw(st.integers(min_value=0, max_value=n_shards - 1))
    if kind == "stall":
        return FaultRule(
            scope="shard", fault="stall", match=match, seconds=0.0,
            after_tasks=draw(st.integers(min_value=0, max_value=2)),
        )
    return FaultRule(
        scope="shard", fault="kill", match=match,
        times=draw(st.integers(min_value=1, max_value=MAX_ATTEMPTS - 1)),
        after_tasks=draw(st.integers(min_value=0, max_value=2)),
        corrupt_tail=draw(st.booleans()),
        drop_state=draw(st.booleans()),
    )


@st.composite
def fault_schedules(draw):
    n_shards = draw(st.integers(min_value=1, max_value=4))
    rules = draw(st.lists(task_rules(), max_size=2))
    rules += draw(st.lists(shard_rules(n_shards), max_size=2))
    plan = FaultPlan(
        seed=draw(st.integers(min_value=0, max_value=999)),
        rules=tuple(rules),
    )
    steal_from = None
    if n_shards > 1 and draw(st.booleans()):
        steal_from = draw(st.integers(min_value=0, max_value=n_shards - 1))
    return n_shards, plan, steal_from


@hyp_settings(max_examples=25, deadline=None)
@given(schedule=fault_schedules())
def test_supervised_recovery_is_state_dict_exact(schedule):
    n_shards, plan, steal_from = schedule
    with pytest.MonkeyPatch.context() as mp, \
            tempfile.TemporaryDirectory() as tmp, \
            warnings.catch_warnings():
        # recovery from an injected torn tail legitimately warns
        warnings.simplefilter("ignore", CheckpointWarning)
        mp.setattr("repro.parallel.sweep.run_sweep_task", fake_sweep_worker)
        shard_dir = Path(tmp)
        manifests = build_shard_manifests(
            CAMPAIGN["settings"], CAMPAIGN["scenario"], CAMPAIGN["methods"],
            CAMPAIGN["objectives"], CAMPAIGN["n_platforms"], CAMPAIGN["root"],
            n_shards=n_shards, shard_dir=shard_dir,
        )
        write_manifests(manifests, shard_dir)

        if steal_from is not None:
            # Crash one shard mid-flight with a private plan, then
            # re-plan its remainder into a fresh shard before the
            # supervised run ever starts.
            crash = FaultPlan(rules=(
                FaultRule(scope="shard", fault="kill", match=steal_from,
                          after_tasks=1, corrupt_tail=True),
            ))
            try:
                run_shard(
                    manifests[steal_from], snapshot_every=1, fault_plan=crash
                )
            except BaseException:
                pass  # the injected kill (empty shards die of nothing)
            steal_shard(shard_dir, steal_from, force=True)

        mp.setenv(FAULT_PLAN_ENV, str(plan.save(shard_dir / "plan.json")))
        supervisor = ShardSupervisor(
            InlineShardExecutor(retry=RetryPolicy(
                max_attempts=MAX_ATTEMPTS, backoff=0.0
            )),
            options=SupervisionOptions(retry=RetryPolicy(
                max_attempts=MAX_ATTEMPTS, backoff=0.0
            )),
        )
        current = load_manifests(shard_dir)
        supervisor.run(
            [m.manifest_path for m in current], resume=True
        )
        merged = merge_shards(load_manifests(shard_dir))
        assert merged.state_dict() == REFERENCE
