"""Tests for repro.lp.branch_and_bound (our own exact solver)."""

import numpy as np
import pytest

from repro import SteadyStateProblem, star_platform
from repro.complexity import reduce_mis_to_scheduling, exact_max_independent_set
from repro.complexity.independent_set import random_graph_edges
from repro.lp.branch_and_bound import solve_branch_and_bound
from repro.lp.builder import build_lp
from repro.lp.milp_backend import solve_milp_scipy


class TestAgainstMILP:
    @pytest.mark.parametrize("objective", ["maxmin", "sum"])
    def test_matches_highs_milp_random(self, problem_factory, objective):
        for seed in range(4):
            problem = problem_factory(seed=seed, n_clusters=4, objective=objective)
            inst = build_lp(problem)
            ours = solve_branch_and_bound(inst)
            ref = solve_milp_scipy(inst)
            assert ours.solution is not None
            assert ours.optimal
            assert ours.solution.value == pytest.approx(ref.value, rel=1e-5, abs=1e-5)

    def test_integral_solution(self, problem_factory):
        problem = problem_factory(seed=7, n_clusters=4)
        res = solve_branch_and_bound(build_lp(problem))
        beta = res.solution.beta
        assert np.allclose(beta, np.round(beta))
        assert problem.check(res.solution.to_allocation()).ok

    def test_bound_sandwiches_value(self, problem_factory):
        problem = problem_factory(seed=9, n_clusters=4)
        res = solve_branch_and_bound(build_lp(problem))
        assert res.bound >= res.solution.value - 1e-7

    def test_on_reduction_instances(self):
        rng = np.random.default_rng(0)
        for _ in range(3):
            n = int(rng.integers(3, 6))
            edges = random_graph_edges(n, 0.5, rng)
            inst = reduce_mis_to_scheduling(n, edges, bound=1)
            res = solve_branch_and_bound(build_lp(inst.problem()))
            mis = exact_max_independent_set(n, edges)
            assert res.solution.value == pytest.approx(len(mis), abs=1e-6)

    def test_node_budget_respected(self):
        platform = star_platform(3, g=80.0, bw=7.0, max_connect=3)
        problem = SteadyStateProblem(platform, objective="maxmin")
        res = solve_branch_and_bound(build_lp(problem), max_nodes=2)
        assert res.nodes <= 3  # root + at most budget overshoot of one batch

    def test_relaxation_already_integral(self):
        # No backbone: the relaxation has no beta at all -> instantly done.
        from repro import Cluster, Platform

        platform = Platform(
            [Cluster("A", 10.0, 1.0, "R0"), Cluster("B", 20.0, 1.0, "R1")],
            ["R0", "R1"],
            [],
        )
        problem = SteadyStateProblem(platform, objective="sum")
        res = solve_branch_and_bound(build_lp(problem))
        assert res.optimal and res.nodes == 1
        assert res.solution.value == pytest.approx(30.0)
