"""Mergeable metrics: exactness, state round-trips, Prometheus text."""

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from repro.util.errors import SolverError

finite_floats = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


def build_registry(observations) -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter("repro_ops_total", labels={"op": "solve"})
    gauge = registry.gauge("repro_depth")
    histogram = registry.histogram("repro_seconds", lo=0.0, hi=2.0, n_bins=16)
    for x in observations:
        counter.inc()
        # gauges merge as max, so only max-style gauges (high-water
        # marks over a nonnegative domain) are exactly mergeable
        gauge.set_max(x)
        histogram.observe(x)
    return registry


class TestPrimitives:
    def test_counter_is_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        with pytest.raises(SolverError):
            counter.inc(-1)

    def test_gauge_set_and_set_max(self):
        gauge = Gauge()
        gauge.set(2.5)
        gauge.set_max(1.0)
        assert gauge.value == 2.5
        gauge.set_max(7.0)
        assert gauge.value == 7.0

    def test_histogram_counts_sum_quantile(self):
        histogram = Histogram(lo=0.0, hi=10.0, n_bins=10)
        for x in (1.0, 2.0, 3.0):
            histogram.observe(x)
        assert histogram.count == 3
        assert histogram.sum == 6.0
        assert 0.0 <= histogram.quantile(0.5) <= 10.0

    def test_histogram_nan_counted_but_not_summed(self):
        histogram = Histogram()
        histogram.observe(float("nan"))
        histogram.observe(1.0)
        assert histogram.count == 2
        assert histogram.sum == 1.0

    def test_counter_inc_is_thread_safe(self):
        counter = Counter()

        def spin():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 40_000


class TestRegistry:
    def test_get_or_create_returns_same_child(self):
        registry = MetricsRegistry()
        a = registry.counter("c", labels={"k": "v"})
        b = registry.counter("c", labels={"k": "v"})
        assert a is b
        assert registry.counter("c", labels={"k": "w"}) is not a

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(SolverError, match="already registered"):
            registry.gauge("x")

    def test_state_round_trip_is_bitwise(self):
        registry = build_registry([0.25, 1.5, 0.125, 3.0])
        state = registry.state_dict()
        clone = MetricsRegistry.from_state(json.loads(json.dumps(state)))
        assert clone.state_dict() == state

    @settings(max_examples=30, deadline=None)
    @given(
        xs=st.lists(finite_floats, max_size=20),
        ys=st.lists(finite_floats, max_size=20),
        zs=st.lists(finite_floats, max_size=20),
    )
    def test_merge_is_exactly_associative(self, xs, ys, zs):
        """(A + B) + C == A + (B + C), bitwise, via state dicts."""
        def merged(order):
            total = MetricsRegistry()
            for part in order:
                total.merge(build_registry(part))
            return total.state_dict()

        left = merged([xs, ys, zs])
        right = merged([zs, ys, xs])
        sequential = build_registry(xs + ys + zs)
        # shard-merge in any order == the one-process fold, bit for bit
        assert left == right == sequential.state_dict()

    def test_merge_accepts_unseen_families(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        b.counter("only_in_b").inc(2)
        b.histogram("h", lo=0.0, hi=4.0, n_bins=8).observe(1.0)
        a.merge(b)
        assert a.counter("only_in_b").value == 2
        assert a.histogram("h", lo=0.0, hi=4.0, n_bins=8).count == 1


class TestPrometheusText:
    def test_families_and_samples_render(self):
        registry = build_registry([0.5, 1.0, 5.0])
        registry.counter("repro_ops_total", labels={"op": "sweep"}).inc(2)
        text = render_prometheus(registry)
        assert "# TYPE repro_ops_total counter" in text
        assert 'repro_ops_total{op="solve"} 3' in text
        assert 'repro_ops_total{op="sweep"} 2' in text
        assert "# TYPE repro_depth gauge" in text
        assert "repro_depth 5" in text  # high-water mark of 0.5/1.0/5.0
        assert "# TYPE repro_seconds histogram" in text
        assert 'repro_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_seconds_sum 6.5" in text
        assert "repro_seconds_count 3" in text

    def test_buckets_are_cumulative_and_end_at_total(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", lo=0.0, hi=4.0, n_bins=4)
        for x in (0.5, 1.5, 2.5, 9.0):  # 9.0 overflows the last bin
            histogram.observe(x)
        lines = [
            l for l in render_prometheus(registry).splitlines()
            if l.startswith("h_bucket")
        ]
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 4  # +Inf bucket includes the overflow

    def test_output_is_deterministic(self):
        a = MetricsRegistry()
        a.counter("z").inc()
        a.counter("a", labels={"x": "2"}).inc()
        a.counter("a", labels={"x": "1"}).inc()
        assert render_prometheus(a) == render_prometheus(
            MetricsRegistry.from_state(a.state_dict())
        )
        lines = render_prometheus(a).splitlines()
        assert lines.index('a{x="1"} 1') < lines.index('a{x="2"} 1')
