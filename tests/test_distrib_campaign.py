"""End-to-end sharded-campaign orchestration (repro.distrib + facade).

Covers the facade/CLI surface of the sharding subsystem: config
validation, `Solver.sweep` dispatch across every executor backend, the
assembled row sink, per-shard crash/resume, and the ``shard run`` /
``shard merge`` host-side CLI. Cross-run comparisons drop the runtime
table (wall clock is the one sanctioned difference between separate
executions of a real sweep); everything else must match bitwise.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Solver, SolverConfig
from repro.experiments import run_sweep, sample_settings
from repro.experiments.cli import main
from repro.experiments.persistence import load_rows_csv, load_rows_jsonl
from repro.parallel.stream import SweepAccumulator
from repro.util.errors import SolverError

from tests.test_parallel_equivalence import assert_rows_identical


def tables_sans_runtime(agg) -> str:
    tables = agg.tables()
    tables.pop("runtime_mean_by_k")
    return json.dumps(tables, sort_keys=True)


class TestConfigValidation:
    def test_shards_require_stream(self):
        with pytest.raises(SolverError, match="stream"):
            SolverConfig(shards=2)

    def test_shard_dir_requires_shards(self):
        with pytest.raises(SolverError, match="shard_dir requires"):
            SolverConfig(shard_dir="/tmp/x")

    def test_shards_refuse_campaign_checkpoint(self):
        with pytest.raises(SolverError, match="incompatible"):
            SolverConfig(shards=2, stream=True, checkpoint="c.ckpt")

    def test_sharded_resume_requires_shard_dir(self):
        with pytest.raises(SolverError, match="persistent shard_dir"):
            SolverConfig(shards=2, stream=True, resume=True)

    def test_unknown_backend_is_refused(self):
        with pytest.raises(SolverError, match="shard_backend"):
            SolverConfig(shard_backend="carrier-pigeon")

    def test_invalid_shard_count(self):
        with pytest.raises(SolverError, match="shards"):
            SolverConfig(shards=0)

    def test_chunk_size_refused_with_shards(self):
        """chunk_size is an intra-campaign pool knob; silently ignoring
        it under sharding would hide a no-op tuning attempt."""
        with pytest.raises(SolverError, match="chunk_size has no effect"):
            SolverConfig(shards=2, stream=True, chunk_size=10)

    def test_custom_registered_backend_passes_validation(self):
        from repro.distrib import (
            InlineShardExecutor,
            ShardError,
            register_shard_backend,
        )
        from repro.distrib.executor import _BACKENDS

        class _Custom(InlineShardExecutor):
            name = "custom-test"

        register_shard_backend("custom-test", _Custom)
        try:
            config = SolverConfig(
                shards=2, stream=True, shard_backend="custom-test"
            )
            assert config.shard_backend == "custom-test"
        finally:
            _BACKENDS.pop("custom-test", None)

    def test_valid_sharded_config_round_trips(self):
        config = SolverConfig(
            shards=3, stream=True, shard_backend="inline", shard_dir="/tmp/s"
        )
        clone = SolverConfig.from_dict(config.to_dict())
        assert clone == config


class TestShardedSweepEquivalence:
    @pytest.fixture(scope="class")
    def sweep_def(self):
        return dict(
            settings=sample_settings(3, rng=21, k_values=[3, 4]),
            kwargs=dict(
                methods=("greedy", "lprg"),
                objectives=("maxmin", "sum"),
                n_platforms=2,
                rng=21,
            ),
        )

    @pytest.fixture(scope="class")
    def reference(self, sweep_def):
        rows = run_sweep(sweep_def["settings"], **sweep_def["kwargs"])
        agg = SweepAccumulator.from_rows(
            rows,
            methods=sweep_def["kwargs"]["methods"],
            objectives=sweep_def["kwargs"]["objectives"],
        )
        return rows, agg

    @pytest.mark.parametrize(
        "backend,shards",
        [
            ("inline", 2),
            ("inline", 5),
            ("inline", 9),  # more shards than the 6 tasks
            ("process", 2),
            ("subprocess", 2),
        ],
    )
    def test_backends_and_shard_counts_match_serial(
        self, sweep_def, reference, backend, shards
    ):
        _, ref_agg = reference
        agg = run_sweep(
            sweep_def["settings"],
            stream=True,
            shards=shards,
            shard_backend=backend,
            jobs=2,  # real concurrency for the pool/subprocess backends
            **sweep_def["kwargs"],
        )
        assert tables_sans_runtime(agg) == tables_sans_runtime(ref_agg)

    def test_facade_sweep_returns_merged_accumulator(
        self, sweep_def, reference
    ):
        _, ref_agg = reference
        solver = Solver(
            SolverConfig(stream=True, shards=2, shard_backend="inline")
        )
        agg = solver.sweep(sweep_def["settings"], **sweep_def["kwargs"])
        assert isinstance(agg, SweepAccumulator)
        assert tables_sans_runtime(agg) == tables_sans_runtime(ref_agg)

    @pytest.mark.parametrize("suffix", [".jsonl", ".csv"])
    def test_assembled_row_sink_holds_every_row_in_order(
        self, sweep_def, reference, tmp_path, suffix
    ):
        rows, _ = reference
        sink = tmp_path / f"rows{suffix}"
        run_sweep(
            sweep_def["settings"],
            stream=True,
            shards=3,
            shard_backend="inline",
            shard_dir=tmp_path / "shards",
            row_sink=sink,
            **sweep_def["kwargs"],
        )
        loader = load_rows_csv if suffix == ".csv" else load_rows_jsonl
        assert_rows_identical(loader(sink), rows)

    def test_killed_shard_resumes_without_losing_a_bit(
        self, sweep_def, reference, tmp_path
    ):
        """Simulate a mid-run kill of one shard (truncate its checkpoint
        to the first task record, drop its sidecar), then resume the
        campaign: the merged aggregate must equal the serial fold."""
        _, ref_agg = reference
        shard_dir = tmp_path / "shards"
        run_sweep(
            sweep_def["settings"],
            stream=True,
            shards=3,
            shard_backend="inline",
            shard_dir=shard_dir,
            **sweep_def["kwargs"],
        )
        ckpt = shard_dir / "shard-0000.ckpt"
        lines = ckpt.read_text().splitlines()
        ckpt.write_text("\n".join(lines[:2]) + "\n")  # header + 1 task
        (shard_dir / "shard-0000.ckpt.state").unlink()
        resumed = run_sweep(
            sweep_def["settings"],
            stream=True,
            shards=3,
            shard_backend="inline",
            shard_dir=shard_dir,
            resume=True,
            **sweep_def["kwargs"],
        )
        assert tables_sans_runtime(resumed) == tables_sans_runtime(ref_agg)

    def test_sequential_jobs_one_matches_pool_jobs(self, sweep_def, reference):
        """jobs keeps its facade meaning under sharding: 1 = one shard
        at a time, N = N concurrent shards — results identical."""
        _, ref_agg = reference
        for jobs in (1, 2):
            agg = run_sweep(
                sweep_def["settings"],
                stream=True,
                shards=3,
                shard_backend="process",
                jobs=jobs,
                **sweep_def["kwargs"],
            )
            assert tables_sans_runtime(agg) == tables_sans_runtime(ref_agg)

    def test_completed_campaign_resume_recomputes_nothing(
        self, sweep_def, tmp_path, monkeypatch
    ):
        shard_dir = tmp_path / "shards"
        first = run_sweep(
            sweep_def["settings"],
            stream=True,
            shards=2,
            shard_backend="inline",
            shard_dir=shard_dir,
            **sweep_def["kwargs"],
        )

        def forbidden(task):  # pragma: no cover - must not be reached
            raise AssertionError("resume must not re-run completed tasks")

        monkeypatch.setattr("repro.parallel.sweep.run_sweep_task", forbidden)
        monkeypatch.setattr("repro.parallel.run_sweep_task", forbidden)
        resumed = run_sweep(
            sweep_def["settings"],
            stream=True,
            shards=2,
            shard_backend="inline",
            shard_dir=shard_dir,
            resume=True,
            **sweep_def["kwargs"],
        )
        # snapshot-restored shards preserve even the runtime table
        assert json.dumps(resumed.tables(), sort_keys=True) == json.dumps(
            first.tables(), sort_keys=True
        )


class TestExecutorFailureModes:
    def test_failing_subprocess_shard_aborts_promptly(self, tmp_path):
        """A shard whose interpreter exits non-zero must surface as a
        ShardError (with its stderr) — never hang the dispatch loop,
        even with more shards pending than job slots."""
        from repro.distrib import ShardError, SubprocessShardExecutor

        bad = tmp_path / "bad.manifest.json"
        bad.write_text(json.dumps({"kind": "shard-manifest"}))  # no version
        with pytest.raises(ShardError, match="exited with code"):
            SubprocessShardExecutor(jobs=1).run([bad, bad, bad])

    def test_unknown_backend_name_lists_alternatives(self):
        from repro.distrib import ShardError, get_shard_executor

        with pytest.raises(ShardError, match="inline, process, subprocess"):
            get_shard_executor("osmosis")

    def test_subprocess_failure_carries_exit_code_and_stderr(self, tmp_path):
        """The raised error must hold the child's exit code, manifest
        path and stderr tail as attributes — postmortems should not
        need to re-run the shard to learn why it died."""
        from repro.distrib import SubprocessShardExecutor
        from repro.distrib.executor import ShardExitError

        bad = tmp_path / "bad.manifest.json"
        bad.write_text(json.dumps({"kind": "shard-manifest"}))  # no version
        with pytest.raises(ShardExitError) as excinfo:
            SubprocessShardExecutor(jobs=1).run([bad])
        exc = excinfo.value
        assert exc.manifest_path == str(bad)
        assert exc.returncode not in (0, None)
        assert "manifest" in exc.stderr_tail  # the child's actual complaint
        assert str(bad) in str(exc) and str(exc.returncode) in str(exc)


class TestBackendRegistry:
    def test_duplicate_registration_is_refused_unless_replaced(self):
        from repro.distrib import (
            InlineShardExecutor,
            ShardError,
            register_shard_backend,
        )
        from repro.distrib.executor import _BACKENDS

        class Variant(InlineShardExecutor):
            pass

        with pytest.raises(ShardError, match="already registered"):
            register_shard_backend("inline", Variant)
        assert _BACKENDS["inline"] is InlineShardExecutor  # untouched
        register_shard_backend("variant", Variant)
        try:
            with pytest.raises(ShardError, match="already registered"):
                register_shard_backend("variant", InlineShardExecutor)
            register_shard_backend("variant", InlineShardExecutor,
                                   replace=True)
            assert _BACKENDS["variant"] is InlineShardExecutor
        finally:
            _BACKENDS.pop("variant", None)

    def test_unknown_backend_suggests_near_miss(self):
        from repro.distrib import ShardError, get_shard_executor

        with pytest.raises(ShardError, match=r"did you mean 'process'\?"):
            get_shard_executor("proces")

    def test_available_backends_list_builtins_first(self):
        from repro.distrib import (
            InlineShardExecutor,
            available_shard_backends,
            register_shard_backend,
        )
        from repro.distrib.executor import _BACKENDS

        assert available_shard_backends()[:3] == [
            "inline", "process", "subprocess",
        ]
        register_shard_backend("aaa-custom", InlineShardExecutor)
        try:
            names = available_shard_backends()
            # extensions sort after the built-ins, not alphabetically first
            assert names[:3] == ["inline", "process", "subprocess"]
            assert "aaa-custom" in names[3:]
        finally:
            _BACKENDS.pop("aaa-custom", None)


class TestCli:
    def test_shard_flag_validation(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["headline", "--shards", "2"])
        assert excinfo.value.code == 2
        assert "--shards requires --stream" in capsys.readouterr().err

        with pytest.raises(SystemExit) as excinfo:
            main(["headline", "--stream", "--shard-dir", "d"])
        assert excinfo.value.code == 2
        assert "--shard-dir requires --shards" in capsys.readouterr().err

        with pytest.raises(SystemExit) as excinfo:
            main([
                "headline", "--stream", "--shards", "2",
                "--checkpoint", "c.ckpt",
            ])
        assert excinfo.value.code == 2
        assert "incompatible" in capsys.readouterr().err

    def test_sharded_resume_flag_is_accepted(self, tmp_path, capsys):
        """--resume + --shards + --shard-dir is the CLI recovery path:
        it must be accepted (and must not demand --checkpoint)."""
        argv = ["headline", "--settings", "2", "--platforms", "1",
                "--seed", "3", "--stream", "--shards", "2",
                "--shard-backend", "inline",
                "--shard-dir", str(tmp_path / "camp")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_shard_flags_parse_on_every_sweep_command(self):
        from repro.experiments.cli import build_parser

        parser = build_parser()
        for command in ("figure5", "figure6", "figure7", "headline"):
            args = parser.parse_args(
                [command, "--stream", "--shards", "3",
                 "--shard-backend", "inline"]
            )
            assert args.shards == 3 and args.shard_backend == "inline"

    def test_headline_sharded_matches_serial(self, capsys):
        argv = ["headline", "--settings", "2", "--platforms", "1",
                "--seed", "3", "--stream"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--shards", "2", "--shard-backend", "inline"]) == 0
        sharded = capsys.readouterr().out
        assert serial == sharded
        assert "LPRG/G value ratios" in serial

    def test_shard_run_and_merge_round_trip(self, tmp_path, capsys):
        from repro.distrib import build_shard_manifests, write_manifests
        from repro.experiments.config import DEFAULT_SCENARIO
        from repro.util.rng import seed_sequence_of

        settings = sample_settings(2, rng=4, k_values=[3])
        manifests = build_shard_manifests(
            settings, DEFAULT_SCENARIO, ("greedy",), ("maxmin",), 1,
            seed_sequence_of(4), n_shards=2, shard_dir=tmp_path,
        )
        write_manifests(manifests, tmp_path)
        for index in range(2):
            assert main([
                "shard", "run",
                str(tmp_path / f"shard-{index:04d}.manifest.json"),
            ]) == 0
            summary = json.loads(capsys.readouterr().out)
            assert summary["shard_index"] == index
        out_json = tmp_path / "merged.json"
        assert main([
            "shard", "merge", str(tmp_path), "--json", str(out_json),
        ]) == 0
        assert "merged 2 shards: 2 tasks" in capsys.readouterr().out
        tables = json.loads(out_json.read_text())
        assert tables["n_tasks"] == 2
        # the written tables are exactly the serial fold's
        rows = run_sweep(
            settings, methods=("greedy",), objectives=("maxmin",),
            n_platforms=1, rng=4,
        )
        ref = SweepAccumulator.from_rows(
            rows, methods=("greedy",), objectives=("maxmin",)
        ).tables()
        tables.pop("runtime_mean_by_k")
        ref.pop("runtime_mean_by_k")
        assert json.dumps(tables, sort_keys=True) == json.dumps(
            ref, sort_keys=True
        )
