"""Tests for the greedy heuristic G (Section 5.1)."""

import numpy as np
import pytest

from repro import (
    SteadyStateProblem,
    fully_connected_platform,
    line_platform,
    solve,
    star_platform,
)
from repro.heuristics.greedy import greedy_allocate
from repro.platform.topology import CapacityLedger


class TestBasicBehaviour:
    def test_single_cluster_takes_all_speed(self):
        problem = SteadyStateProblem(line_platform(1), objective="maxmin")
        alloc = greedy_allocate(problem)
        assert alloc.alpha[0, 0] == pytest.approx(100.0)

    def test_allocation_always_valid(self, problem_factory):
        for seed in range(5):
            problem = problem_factory(seed=seed, n_clusters=7)
            alloc = greedy_allocate(problem)
            report = problem.check(alloc)
            assert report.ok, report.violations

    def test_zero_payoff_app_gets_nothing(self):
        platform = fully_connected_platform(3, g=50.0, bw=10.0, max_connect=2)
        problem = SteadyStateProblem(platform, [1.0, 0.0, 1.0], objective="maxmin")
        alloc = greedy_allocate(problem)
        assert alloc.throughput(1) == 0.0
        # ... but its cluster still serves others or itself stays idle.
        assert alloc.throughput(0) > 0 and alloc.throughput(2) > 0

    def test_saturates_all_speed_with_uniform_payoffs(self):
        # With every app participating, G ends only when all speed is used.
        platform = fully_connected_platform(4, g=200.0, bw=30.0, max_connect=5)
        problem = SteadyStateProblem(platform, objective="sum")
        alloc = greedy_allocate(problem)
        assert alloc.throughputs.sum() == pytest.approx(platform.speeds.sum())

    def test_deterministic(self, problem_factory):
        problem = problem_factory(seed=3, n_clusters=6)
        a = greedy_allocate(problem)
        b = greedy_allocate(problem)
        assert a == b

    def test_export_when_local_speed_zero(self):
        # Hub has work (payoff 1) but zero speed: everything is exported.
        platform = star_platform(2, hub_speed=0.0, g=100.0, bw=10.0, max_connect=2)
        problem = SteadyStateProblem(platform, [1, 0, 0], objective="maxmin")
        alloc = greedy_allocate(problem)
        assert alloc.alpha[0, 0] == 0.0
        assert alloc.throughput(0) > 0
        assert alloc.beta[0, 1] + alloc.beta[0, 2] >= 1

    def test_respects_connection_limits(self):
        # One leaf, max_connect=1, bw=10 -> at most 10 exported.
        platform = star_platform(1, hub_speed=0.0, g=100.0, bw=10.0, max_connect=1)
        problem = SteadyStateProblem(platform, [1, 0], objective="maxmin")
        alloc = greedy_allocate(problem)
        assert alloc.beta[0, 1] == 1
        assert alloc.alpha[0, 1] == pytest.approx(10.0)


class TestFairnessSelection:
    def test_smallest_received_payoff_first(self):
        # Two apps, one with a huge head start via the base allocation:
        # the other must be served first.
        platform = fully_connected_platform(2, g=100.0, bw=10.0, max_connect=1)
        problem = SteadyStateProblem(platform, objective="maxmin")
        from repro.core.allocation import Allocation

        base = Allocation.zeros(2)
        base.alpha[0, 0] = 50.0
        ledger = CapacityLedger(platform)
        ledger.commit_local(0, 50.0)
        alloc = greedy_allocate(problem, ledger=ledger, base=base)
        # Both end up fully served (speed saturation), but app 1 got at
        # least as much as app 0 gained on top of its head start.
        assert alloc.throughput(1) >= alloc.throughput(0) - 50.0 - 1e-9

    def test_high_payoff_breaks_ties(self):
        # Two zero-speed origins compete for the single fast worker; the
        # payoff-2 application is selected first and takes all of it.
        platform = fully_connected_platform(
            3, speeds=[0.0, 0.0, 10.0], g=100.0, bw=10.0, max_connect=5
        )
        problem = SteadyStateProblem(platform, [1.0, 2.0, 0.0], objective="sum")
        alloc = greedy_allocate(problem)
        assert alloc.throughput(1) == pytest.approx(10.0)
        assert alloc.throughput(0) == pytest.approx(0.0)

    def test_fairness_in_payoff_terms(self):
        # With one shared export path, the low-payoff app receives more
        # raw throughput: the greedy balances alpha_k * pi_k, not alpha_k.
        platform = fully_connected_platform(2, g=5.0, bw=10.0, max_connect=1)
        problem = SteadyStateProblem(platform, [1.0, 2.0], objective="sum")
        alloc = greedy_allocate(problem)
        assert alloc.throughput(0) * 1.0 <= alloc.throughput(1) * 2.0 + 1e-9


class TestWarmStart:
    def test_base_allocation_is_extended_not_rebuilt(self, problem_factory):
        problem = problem_factory(seed=4, n_clusters=5)
        base = greedy_allocate(problem)
        # Re-running on an exhausted ledger returns the base unchanged.
        ledger = CapacityLedger(problem.platform)
        from repro.heuristics.lprg import charge_ledger

        charge_ledger(ledger, base)
        again = greedy_allocate(problem, ledger=ledger, base=base)
        assert np.allclose(again.alpha, base.alpha, atol=1e-6)

    def test_runs_via_registry(self, problem_factory):
        problem = problem_factory(seed=5, n_clusters=5)
        result = solve(problem, method="g")
        assert result.method == "greedy"
        assert result.n_lp_solves == 0
        assert result.value == pytest.approx(problem.objective_value(result.allocation))
