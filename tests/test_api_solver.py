"""API-equivalence suite for the :mod:`repro.api` facade.

Pins the redesign's core contract: ``Solver(...).solve/solve_many/
sweep`` are **bitwise-equal** to the legacy ``solve``/``solve_many``/
``run_sweep`` shims across every registered method and both objectives,
with or without cross-call state reuse. Plus ``SolverConfig``
validation, ``to_dict``/``from_dict`` round-trips, the strict
unknown-option rejection (the PR's bugfix satellite), and
``method_info()`` metadata consistency.
"""

import doctest
from dataclasses import fields

import numpy as np
import pytest

from repro import (
    SolveReport,
    Solver,
    SolverConfig,
    SolverError,
    method_info,
    solve,
    solve_many,
)
from repro.api.config import (
    GreedyOptions,
    IteratedLPRGOptions,
    LPRROptions,
    MethodOptions,
    options_class_for,
)
from repro.core.solve import available_methods
from repro.heuristics.base import get_heuristic


def assert_same_result(a, b):
    """Bitwise comparison of the deterministic result fields."""
    assert a.method == b.method
    assert a.objective == b.objective
    assert a.value == b.value
    assert a.n_lp_solves == b.n_lp_solves
    if a.allocation is None:
        assert b.allocation is None
    else:
        assert np.array_equal(a.allocation.alpha, b.allocation.alpha)
        assert np.array_equal(a.allocation.beta, b.allocation.beta)


class TestSolveEquivalence:
    @pytest.mark.parametrize("objective", ["maxmin", "sum"])
    @pytest.mark.parametrize("method", sorted(available_methods()))
    def test_facade_matches_legacy_all_methods(
        self, problem_factory, method, objective
    ):
        # K=4 keeps the exact solvers (milp/bnb) cheap enough to sweep.
        problem = problem_factory(seed=1, n_clusters=4, objective=objective)
        legacy = solve(problem, method, rng=7)
        facade = Solver.for_method(method).solve(problem, rng=7)
        assert_same_result(legacy, facade)

    @pytest.mark.parametrize("method", ["lprg", "lprr", "lprg-it"])
    def test_reused_solver_bitwise_equal_to_fresh(self, problem_factory, method):
        problem = problem_factory(seed=2, n_clusters=5)
        reused = Solver.for_method(method)
        first = reused.solve(problem, rng=3)
        again = reused.solve(problem, rng=3)  # warm template + dense cache
        fresh = Solver.for_method(method).solve(problem, rng=3)
        assert_same_result(first, again)
        assert_same_result(first, fresh)
        assert reused.state.lp_cache.build_hits > 0

    def test_seed_policy_matches_per_call_rng(self, problem_factory):
        problem = problem_factory(seed=0, n_clusters=4)
        configured = Solver(SolverConfig(method="lprr", seed=11)).solve(problem)
        explicit = Solver.for_method("lprr").solve(problem, rng=11)
        assert_same_result(configured, explicit)

    def test_objective_override(self, problem_factory):
        problem = problem_factory(seed=0, n_clusters=4, objective="maxmin")
        report = Solver(SolverConfig(method="greedy", objective="sum")).solve(
            problem
        )
        assert report.objective == "sum"
        assert_same_result(report, solve(problem.with_objective("sum"), "greedy"))

    def test_report_shape(self, problem_factory):
        problem = problem_factory(seed=0, n_clusters=4)
        solver = Solver.for_method("lprr")
        report = solver.solve(problem, rng=0)
        assert isinstance(report, SolveReport)
        assert report.config is solver.config
        assert report.cache_stats["cold_builds"] >= 1
        assert report.lp_stats is not None  # session-backed at K=4
        assert "lprr" in repr(report)  # HeuristicResult repr preserved

    def test_legacy_solve_returns_report(self, problem_factory):
        report = solve(problem_factory(seed=0, n_clusters=4), "greedy")
        assert isinstance(report, SolveReport)
        assert report.config.method == "greedy"


class TestBatchAndSweepEquivalence:
    def test_solve_many_matches_legacy_and_loop(self, problem_factory):
        problems = [problem_factory(seed=s, n_clusters=4) for s in range(4)]
        legacy = solve_many(problems, "lprr", rng=5)
        facade = Solver.for_method("lprr").solve_many(problems, rng=5)
        for a, b in zip(legacy, facade):
            assert_same_result(a, b)
        # ... and to a per-instance spawn-child solve (the PR-1 contract).
        from repro.util.rng import spawn_seed_sequences

        first_seed = spawn_seed_sequences(5, len(problems))[0]
        loose = solve(problems[0], "lprr", rng=np.random.default_rng(first_seed))
        assert_same_result(loose, facade[0])

    def test_solve_many_batch_reuses_state(self, problem_factory):
        problem = problem_factory(seed=3, n_clusters=4)
        solver = Solver.for_method("lprg")
        reports = solver.solve_many([problem] * 6, rng=0)
        assert len(reports) == 6
        assert solver.state.lp_cache.cold_builds == 1
        assert solver.state.lp_cache.build_hits == 5
        # Reports describe the owning batch solver, not per-task shims.
        for report in reports:
            assert report.config is solver.config
            assert report.cache_stats["cold_builds"] == 1
            assert report.cache_stats["build_hits"] == 5

    def test_index_cache_bounded(self, problem_factory):
        from repro.api import SolverState

        solver = Solver.for_method("greedy")
        for fp in range(SolverState.MAX_INDEX_ENTRIES + 50):
            solver.state.index_cache[f"fake-{fp}"] = {}
        solver.state.adopt_platform(
            problem_factory(seed=0, n_clusters=3).platform
        )
        assert len(solver.state.index_cache) <= SolverState.MAX_INDEX_ENTRIES

    def test_sweep_matches_legacy_run_sweep(self):
        from repro.experiments import run_sweep, sample_settings

        settings = sample_settings(2, rng=4, k_values=[5])
        legacy = run_sweep(settings, n_platforms=1, rng=9)
        facade = Solver(SolverConfig()).sweep(settings, n_platforms=1, rng=9)
        named = Solver(SolverConfig()).sweep(
            settings, scenario="calibrated", n_platforms=1, rng=9
        )

        def key(rows):
            return [
                (r.setting, r.replicate, r.objective, r.method, r.value,
                 r.lp_value, r.n_lp_solves)
                for r in rows
            ]

        assert key(legacy) == key(facade) == key(named)


class TestOptionRejection:
    """The bugfix satellite: unknown options error instead of no-op."""

    def test_unknown_option_suggests_nearest(self, problem_factory):
        problem = problem_factory(seed=0, n_clusters=3)
        with pytest.raises(SolverError, match="eager_integer_fixing"):
            solve(problem, "lprr", eager_integer_fixng=True)

    def test_unknown_option_lists_valid(self, problem_factory):
        problem = problem_factory(seed=0, n_clusters=3)
        with pytest.raises(SolverError, match="valid options"):
            solve(problem, "greedy", selektion="literal")

    def test_option_of_other_method_rejected(self, problem_factory):
        problem = problem_factory(seed=0, n_clusters=3)
        with pytest.raises(SolverError, match="max_iters"):
            solve(problem, "greedy", max_iters=3)

    def test_solve_many_validates_too(self, problem_factory):
        with pytest.raises(SolverError, match="did you mean"):
            solve_many(
                [problem_factory(seed=0, n_clusters=3)], "lprr", wam_start=False
            )

    def test_valid_options_still_flow(self, problem_factory):
        problem = problem_factory(seed=0, n_clusters=4)
        report = solve(problem, "lprr", rng=0, eager_integer_fixing=True,
                       warm_start=False, lp_backend="session")
        assert report.allocation is not None
        assert report.meta["lp_backend"] == "session"


class TestSolverConfig:
    def test_alias_canonicalised(self):
        assert SolverConfig(method="G").method == "greedy"
        assert SolverConfig.for_method("branch-and-bound").method == "bnb"

    def test_unknown_method_is_value_error(self):
        with pytest.raises(ValueError):
            SolverConfig(method="quantum-annealing")

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError):
            SolverConfig(objective="fairness")

    def test_bad_lp_backend(self):
        with pytest.raises(SolverError, match="lp_backend"):
            SolverConfig(lp_backend="cplex")

    def test_bad_jobs_and_chunk(self):
        with pytest.raises(SolverError):
            SolverConfig(jobs=0)
        with pytest.raises(SolverError):
            SolverConfig(chunk_size=0)

    def test_resume_requires_checkpoint(self):
        with pytest.raises(SolverError, match="checkpoint"):
            SolverConfig(resume=True)

    def test_bad_seed_type(self):
        with pytest.raises(SolverError, match="seed"):
            SolverConfig(seed="42")

    def test_options_default_per_method(self):
        assert isinstance(SolverConfig(method="lprr").options, LPRROptions)
        assert isinstance(SolverConfig(method="greedy").options, GreedyOptions)
        assert type(SolverConfig(method="lpr").options) is MethodOptions

    def test_wrong_options_type_rejected(self):
        with pytest.raises(SolverError, match="GreedyOptions"):
            SolverConfig(method="greedy", options=LPRROptions())

    def test_bad_selection_value(self):
        with pytest.raises(SolverError, match="selection"):
            SolverConfig(method="greedy", options=GreedyOptions(selection="magic"))

    @pytest.mark.parametrize("method", sorted(available_methods()))
    def test_to_from_dict_round_trip(self, method):
        config = SolverConfig.for_method(
            method, seed=3, jobs=2, lp_backend="scipy", warm_start=False
        )
        clone = SolverConfig.from_dict(config.to_dict())
        assert clone == config

    def test_round_trip_with_method_options(self):
        config = SolverConfig.for_method(
            "lprg-it", max_iters=7, checkpoint="/tmp/x.ckpt", resume=True
        )
        clone = SolverConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.options == IteratedLPRGOptions(max_iters=7)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(SolverError, match="did you mean"):
            SolverConfig.from_dict({"method": "lprg", "job": 4})

    def test_method_kwargs_gating(self):
        assert SolverConfig(method="greedy").method_kwargs() == {
            "selection": "intuition"
        }
        lprr = SolverConfig.for_method("lprr", warm_start=False)
        assert lprr.method_kwargs() == {
            "eager_integer_fixing": False,
            "warm_start": False,
            "lp_backend": "auto",
            "lp_engine": "revised",
            "share_bases": False,
        }
        bnb = SolverConfig(method="bnb").method_kwargs()
        assert "lp_backend" not in bnb and bnb["warm_start"] is True
        assert bnb["lp_engine"] == "revised" and "share_bases" not in bnb


class TestMethodInfo:
    def test_covers_available_methods(self):
        info = method_info()
        assert set(info) == set(available_methods())

    def test_metadata_content(self):
        info = method_info()
        assert info["greedy"].uses_lp is False
        assert info["lprr"].deterministic is False
        assert info["lprr"].uses_lp is True
        assert "time_limit" in info["milp"].options
        assert "g" in info["greedy"].aliases
        assert info["lprg"].description
        assert info["lp"].as_dict()["uses_lp"] is True

    @pytest.mark.parametrize("method", sorted(available_methods()))
    def test_options_classes_consistent_with_registry(self, method):
        """Every declared run option is reachable through the config:
        either a typed sub-config field or a config-level LP knob."""
        heuristic = get_heuristic(method)
        opt_fields = {f.name for f in fields(options_class_for(method))}
        config_level = {"warm_start", "lp_backend", "lp_engine", "share_bases"} & set(
            heuristic.option_names
        )
        assert opt_fields | config_level == set(heuristic.option_names)

    def test_cli_list_methods(self, capsys):
        from repro.experiments.cli import main

        assert main(["--list-methods"]) == 0
        out = capsys.readouterr().out
        assert "lprg" in out and "eager_integer_fixing" in out

    def test_cli_list_flag_with_subcommand_rejected(self, capsys):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["--list-methods", "grid"])
        assert exc.value.code == 2
        assert "cannot be combined" in capsys.readouterr().err


class TestApiDoctests:
    @pytest.mark.parametrize("module_name", ["repro", "repro.core.solve"])
    def test_module_doctests(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        result = doctest.testmod(module, verbose=False)
        assert result.failed == 0
        assert result.attempted > 0
