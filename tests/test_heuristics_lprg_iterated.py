"""Tests for the iterated-LPRG extension heuristic."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import solve
from repro.heuristics.lprg_iterated import residual_platform
from repro.platform.topology import CapacityLedger

from tests.strategies import problems


class TestResidualPlatform:
    def test_fresh_ledger_reproduces_platform(self, problem_factory):
        platform = problem_factory(seed=0, n_clusters=5).platform
        residual = residual_platform(CapacityLedger(platform))
        assert np.allclose(residual.speeds, platform.speeds)
        assert np.allclose(residual.local_capacities, platform.local_capacities)
        assert residual.routed_pairs() == platform.routed_pairs()
        for name in platform.links:
            assert residual.links[name].max_connect == platform.links[name].max_connect

    def test_consumption_reflected(self, line3):
        ledger = CapacityLedger(line3)
        ledger.commit_remote(0, 2, 5.0)
        residual = residual_platform(ledger)
        assert residual.speeds[2] == 95.0
        assert residual.local_capacities[0] == 45.0
        assert residual.links["seg0"].max_connect == 3
        assert residual.route(0, 2).connection_cap == 3


class TestIteratedLPRG:
    def test_registered(self, problem_factory):
        problem = problem_factory(seed=0, n_clusters=5)
        result = solve(problem, "lprgi")
        assert result.method == "lprg-it"
        assert 1 <= result.n_lp_solves <= 4

    def test_valid_and_bounded(self, problem_factory):
        for seed in range(4):
            problem = problem_factory(seed=seed, n_clusters=6)
            it = solve(problem, "lprg-it")
            assert problem.check(it.allocation).ok
            assert it.value <= solve(problem, "lp").value + 1e-6

    def test_dominates_lpr(self, problem_factory):
        for seed in range(4):
            problem = problem_factory(seed=seed, n_clusters=6)
            assert solve(problem, "lprg-it").value >= solve(problem, "lpr").value - 1e-9

    def test_comparable_to_lprg(self, problem_factory):
        """No dominance theorem exists either way: re-rounding commits to
        a different vertex that the final greedy repairs differently. The
        two must stay in the same quality band (within 10% relative)."""
        rel_diffs = []
        for seed in range(6):
            problem = problem_factory(seed=seed, n_clusters=6)
            lprg = solve(problem, "lprg").value
            it = solve(problem, "lprg-it").value
            if lprg > 0:
                rel_diffs.append((it - lprg) / lprg)
        assert all(d >= -0.10 for d in rel_diffs), rel_diffs

    def test_max_iters_validation(self, problem_factory):
        with pytest.raises(ValueError):
            solve(problem_factory(seed=0, n_clusters=3), "lprg-it", max_iters=0)

    def test_single_iteration_close_to_lprg(self, problem_factory):
        """One iteration rounds one LP solution, like plain lprg.

        Pinned to the scipy backend on both sides: degenerate LPs admit
        multiple optimal vertices, and the session engine's canonical
        vertex can legitimately round a few percent away from the one
        HiGHS reports — the comparison is about the iteration
        machinery, not LP tie-breaking.
        """
        problem = problem_factory(seed=2, n_clusters=5)
        one = solve(problem, "lprg-it", max_iters=1, lp_backend="scipy")
        lprg = solve(problem, "lprg")
        assert one.value == pytest.approx(lprg.value, rel=0.05)

    @given(problems(max_clusters=5))
    @settings(max_examples=10)
    def test_always_valid_property(self, problem):
        result = solve(problem, "lprg-it")
        report = problem.check(result.allocation)
        assert report.ok, report.violations
