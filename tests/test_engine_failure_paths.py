"""Failure-injection tests for the simulation engine and greedy options."""

import numpy as np
import pytest

from repro import BackboneLink, Cluster, Platform, SteadyStateProblem, solve
from repro.heuristics.greedy import greedy_allocate
from repro.schedule.periodic import PeriodicSchedule
from repro.simulation import FlowSimulator
from repro.util.errors import SimulationError


def _two_cluster_platform(g=10.0, bw=5.0, speed=(10.0, 10.0)):
    return Platform(
        [
            Cluster("A", speed[0], g, "R0"),
            Cluster("B", speed[1], g, "R1"),
        ],
        ["R0", "R1"],
        [BackboneLink("L", ("R0", "R1"), bw=bw, max_connect=2)],
    )


def _schedule(platform, loads, beta, period=10):
    return PeriodicSchedule(
        platform=platform,
        period=period,
        loads=np.asarray(loads, dtype=np.int64),
        beta=np.asarray(beta, dtype=np.int64),
    )


class TestStallDetection:
    def test_starved_flow_raises(self):
        """A transfer over a zero-capacity local link can never progress:
        the engine must detect the stall instead of spinning."""
        platform = _two_cluster_platform(g=0.0)
        # Hand-built (invalid) schedule shipping 5 units A -> B.
        schedule = _schedule(platform, [[0, 5], [0, 0]], [[0, 1], [0, 0]])
        sim = FlowSimulator(platform)
        with pytest.raises(SimulationError, match="stalled"):
            sim.run(schedule, n_periods=2)

    def test_zero_speed_backlog_raises(self):
        """Delivered work on a zero-speed cluster can never be computed."""
        platform = Platform(
            [
                Cluster("A", 10.0, 10.0, "R0"),
                Cluster("B", 0.0, 10.0, "R1"),
            ],
            ["R0", "R1"],
            [BackboneLink("L", ("R0", "R1"), bw=5.0, max_connect=2)],
        )
        schedule = _schedule(platform, [[0, 5], [0, 0]], [[0, 1], [0, 0]])
        sim = FlowSimulator(platform)
        with pytest.raises(SimulationError, match="zero-speed"):
            sim.run(schedule, n_periods=2)

    def test_time_never_goes_backwards(self):
        """Regression guard on the event-ordering invariant."""
        platform = _two_cluster_platform()
        schedule = _schedule(
            platform, [[50, 5], [0, 50]], [[0, 1], [0, 0]], period=10
        )
        out = FlowSimulator(platform).run(schedule, n_periods=4)
        assert out.elapsed >= 4 * 10 - 1e-9 or out.completed.sum() > 0


class TestGreedySelectionOption:
    def test_unknown_selection_rejected(self, problem_factory):
        with pytest.raises(ValueError):
            greedy_allocate(problem_factory(seed=0, n_clusters=3), selection="magic")

    def test_literal_selection_still_valid(self, problem_factory):
        """Even the degenerate literal rule must output valid allocations."""
        for seed in range(3):
            problem = problem_factory(seed=seed, n_clusters=5)
            alloc = greedy_allocate(problem, selection="literal")
            report = problem.check(alloc)
            assert report.ok, report.violations

    def test_literal_starves_under_maxmin(self):
        """The E14 phenomenon in miniature: with two competing apps and
        a shared bottleneck, the literal rule leaves one app at zero."""
        # Narrow per-connection bandwidth (2) forces many small steps, so
        # the selection rule decides who gets the worker's 8 speed units.
        platform = Platform(
            [
                Cluster("A", 0.0, 10.0, "R0"),
                Cluster("B", 0.0, 10.0, "R0"),
                Cluster("W", 8.0, 100.0, "R1"),
            ],
            ["R0", "R1"],
            [BackboneLink("L", ("R0", "R1"), bw=2.0, max_connect=8)],
        )
        problem = SteadyStateProblem(platform, [1, 1, 0], objective="maxmin")
        fair = greedy_allocate(problem, selection="intuition")
        greedyhog = greedy_allocate(problem, selection="literal")
        assert fair.maxmin_value(problem.payoffs) > 0
        assert greedyhog.maxmin_value(problem.payoffs) == pytest.approx(0.0)

    def test_selection_via_registry(self, problem_factory):
        problem = problem_factory(seed=1, n_clusters=4)
        result = solve(problem, "greedy", selection="literal")
        assert problem.check(result.allocation).ok
