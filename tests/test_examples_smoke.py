"""Smoke tests: the shipped examples must run to completion.

Each example is executed in-process (fast ones) with its ``main()``
entry point; stdout is captured and spot-checked for the headline
artifacts. The two long-running ones (grid_campaign with LPRR,
reproduce_figures) are exercised at reduced scale.
"""

import importlib.util
import re
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "LPRG objective" in out
        assert "PeriodicSchedule" in out

    def test_fairness_and_priorities(self, capsys):
        _load("fairness_and_priorities").main()
        out = capsys.readouterr().out
        assert "Jain index" in out
        assert "maxmin" in out and "sum" in out

    def test_np_hardness_demo(self, capsys):
        _load("np_hardness_demo").main()
        out = capsys.readouterr().out
        assert "Lemma 1" in out and "True" in out
        assert "exact scheduling optimum" in out

    def test_adaptive_rescheduling(self, capsys):
        _load("adaptive_rescheduling").main()
        out = capsys.readouterr().out
        assert "cumulative payoff" in out
        assert "adaptive" in out
        # The incremental path must genuinely beat from-scratch solves,
        # and every warm answer must match the cold oracle bitwise.
        match = re.search(
            r"re-solve cost: (\d+) warm pivots vs (\d+) from-scratch", out
        )
        assert match, out
        warm, cold = int(match.group(1)), int(match.group(2))
        assert warm < cold
        assert "bitwise oracle match: True" in out

    def test_service_client(self, capsys):
        _load("service_client").main()
        out = capsys.readouterr().out
        assert "terminal event: done" in out
        assert "matches the server aggregate: True" in out

    def test_reproduce_figures_tiny(self, capsys):
        # Drive the figure script at minimal scale via its module API.
        module = _load("reproduce_figures")
        from repro.experiments import figure5, render_figure

        fig = figure5(
            k_values=(4,), settings_per_k=1, platforms_per_setting=1, rng=0
        )
        print(render_figure(fig))
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert hasattr(module, "main")

    @pytest.mark.slow
    def test_grid_campaign(self, capsys):
        _load("grid_campaign").main()
        out = capsys.readouterr().out
        assert "simulated execution" in out
