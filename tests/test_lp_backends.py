"""Tests for the scipy LP/MILP backends and the solution container."""

import numpy as np
import pytest

from repro import SteadyStateProblem, line_platform, star_platform
from repro.lp.builder import build_lp
from repro.lp.milp_backend import solve_milp_scipy
from repro.lp.scipy_backend import solve_lp_scipy
from repro.lp.solution import LPSolution
from repro.util.errors import InfeasibleError


class TestLPSolution:
    def test_matrices_and_throughputs(self, line3):
        problem = SteadyStateProblem(line3, objective="sum")
        sol = solve_lp_scipy(build_lp(problem))
        assert sol.alpha.shape == (3, 3)
        assert np.all(sol.alpha >= 0)
        assert sol.throughputs().sum() == pytest.approx(sol.value)

    def test_integral_solution_converts(self):
        platform = star_platform(1, hub_speed=0.0, g=80.0, bw=20.0, max_connect=3)
        problem = SteadyStateProblem(platform, [1, 0], objective="maxmin")
        sol = solve_milp_scipy(build_lp(problem))
        assert sol.is_integral
        alloc = sol.to_allocation()
        assert alloc.beta.dtype == np.int64

    def test_fractional_conversion_rejected(self, line3):
        problem = SteadyStateProblem(line3, objective="maxmin")
        inst = build_lp(problem)
        x = np.zeros(inst.n_vars)
        x[inst.index.beta(0, 1)] = 0.5
        sol = LPSolution(x=x, value=0.0, index=inst.index)
        assert not sol.is_integral
        with pytest.raises(ValueError):
            sol.to_allocation()

    def test_repr_mentions_integrality(self, line3):
        problem = SteadyStateProblem(line3, objective="sum")
        sol = solve_lp_scipy(build_lp(problem))
        assert "LPSolution" in repr(sol)


class TestScipyLP:
    def test_relaxation_dominates_milp(self, problem_factory):
        for seed in range(3):
            problem = problem_factory(seed=seed, n_clusters=5)
            inst = build_lp(problem)
            lp = solve_lp_scipy(inst)
            milp = solve_milp_scipy(inst)
            assert lp.value >= milp.value - 1e-6

    def test_infeasible_detected(self):
        # Force infeasibility via impossible bounds on a real instance.
        problem = SteadyStateProblem(line_platform(2), objective="sum")
        inst = build_lp(problem)
        lb = inst.lb.copy()
        ub = inst.ub.copy()
        lb[0] = 1e9  # alpha[0,0] >= 1e9 > speed
        ub[0] = 2e9
        with pytest.raises(InfeasibleError):
            solve_lp_scipy(inst.with_bounds(lb, ub))

    def test_zero_platform(self):
        # One isolated cluster with zero everything except speed.
        from repro import Cluster, Platform

        platform = Platform([Cluster("A", 0.0, 0.0, "R0")], ["R0"], [])
        problem = SteadyStateProblem(platform, objective="maxmin")
        sol = solve_lp_scipy(build_lp(problem))
        assert sol.value == pytest.approx(0.0)


class TestScipyMILP:
    def test_milp_betas_integral(self, problem_factory):
        problem = problem_factory(seed=1, n_clusters=5)
        sol = solve_milp_scipy(build_lp(problem))
        beta = sol.beta
        assert np.allclose(beta, np.round(beta))

    def test_milp_allocation_valid(self, problem_factory):
        problem = problem_factory(seed=2, n_clusters=5)
        sol = solve_milp_scipy(build_lp(problem))
        report = problem.check(sol.to_allocation())
        assert report.ok, report.violations

    def test_milp_at_least_rounded_lp(self, problem_factory):
        # MILP optimum >= any rounding heuristic, in particular LPR.
        from repro.heuristics.lpr import round_down

        problem = problem_factory(seed=3, n_clusters=5)
        inst = build_lp(problem)
        milp = solve_milp_scipy(inst)
        lpr_alloc = round_down(problem, solve_lp_scipy(inst))
        assert milp.value >= problem.objective_value(lpr_alloc) - 1e-6
