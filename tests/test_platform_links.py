"""Tests for repro.platform.links and cluster."""

import pytest

from repro.platform.cluster import Cluster, equivalent_star_speed
from repro.platform.links import BackboneLink, LocalLink
from repro.util.errors import PlatformError


class TestBackboneLink:
    def test_construction(self):
        li = BackboneLink("b", ("R0", "R1"), bw=5.0, max_connect=3)
        assert li.joins("R0", "R1") and li.joins("R1", "R0")
        assert not li.joins("R0", "R2")
        assert li.total_bandwidth == 15.0

    def test_negative_bw_rejected(self):
        with pytest.raises(PlatformError):
            BackboneLink("b", ("R0", "R1"), bw=-1.0, max_connect=1)

    def test_negative_max_connect_rejected(self):
        with pytest.raises(PlatformError):
            BackboneLink("b", ("R0", "R1"), bw=1.0, max_connect=-1)

    def test_self_loop_rejected(self):
        with pytest.raises(PlatformError):
            BackboneLink("b", ("R0", "R0"), bw=1.0, max_connect=1)

    def test_zero_capacity_allowed(self):
        # max_connect = 0 is a legal "closed" link.
        li = BackboneLink("b", ("R0", "R1"), bw=1.0, max_connect=0)
        assert li.total_bandwidth == 0.0

    def test_frozen(self):
        li = BackboneLink("b", ("R0", "R1"), bw=1.0, max_connect=1)
        with pytest.raises(AttributeError):
            li.bw = 2.0


class TestLocalLink:
    def test_construction(self):
        assert LocalLink("l", capacity=10.0).capacity == 10.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(PlatformError):
            LocalLink("l", capacity=-0.1)


class TestCluster:
    def test_construction(self):
        c = Cluster("C0", speed=100.0, g=50.0, router="R0")
        assert c.local_link.capacity == 50.0
        assert c.local_link.name == "local:C0"

    def test_zero_speed_allowed(self):
        # The NP-hardness reduction needs a zero-speed cluster.
        assert Cluster("C0", speed=0.0, g=1.0, router="R0").speed == 0.0

    def test_negative_speed_rejected(self):
        with pytest.raises(PlatformError):
            Cluster("C0", speed=-1.0, g=1.0, router="R0")

    def test_negative_g_rejected(self):
        with pytest.raises(PlatformError):
            Cluster("C0", speed=1.0, g=-1.0, router="R0")


class TestEquivalentStarSpeed:
    def test_master_only(self):
        assert equivalent_star_speed(10.0, [], []) == 10.0

    def test_workers_capped_by_bandwidth(self):
        # Worker 1 is compute-bound (5 < 8), worker 2 bandwidth-bound.
        assert equivalent_star_speed(0.0, [5.0, 20.0], [8.0, 3.0]) == 8.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(PlatformError):
            equivalent_star_speed(1.0, [1.0], [])

    def test_negative_rejected(self):
        with pytest.raises(PlatformError):
            equivalent_star_speed(-1.0, [], [])
