"""SolveReport JSON round-trip (the service result-endpoint contract).

``to_dict`` must produce a payload that survives an actual JSON
encode/decode cycle and rebuilds — via ``from_dict`` — into a report
whose ``to_dict`` is *equal*, including exact float bits (shortest-repr
JSON round-trips doubles losslessly).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import PlatformSpec, SteadyStateProblem, generate_platform
from repro.api import Solver, SolverConfig, SolveReport


def _problem(seed: int = 11) -> SteadyStateProblem:
    spec = PlatformSpec(
        n_clusters=4, connectivity=0.6, heterogeneity=0.4,
        mean_g=250.0, mean_bw=30.0, mean_max_connect=10.0,
        speed_heterogeneity=0.4,
    )
    return SteadyStateProblem(generate_platform(spec, rng=seed),
                              objective="maxmin")


@pytest.mark.parametrize("method", ["greedy", "lprg", "lp"])
def test_roundtrip_through_real_json(method):
    report = Solver(SolverConfig(method=method)).solve(_problem(), rng=3)
    encoded = json.dumps(report.to_dict())
    rebuilt = SolveReport.from_dict(json.loads(encoded))
    assert rebuilt.to_dict() == report.to_dict()


def test_roundtrip_preserves_base_fields_bitwise():
    report = Solver(SolverConfig(method="greedy")).solve(_problem(), rng=7)
    rebuilt = SolveReport.from_dict(json.loads(json.dumps(report.to_dict())))
    assert rebuilt.method == report.method
    assert rebuilt.objective == report.objective
    assert rebuilt.value == report.value  # exact float equality
    assert rebuilt.n_lp_solves == report.n_lp_solves
    assert np.array_equal(rebuilt.allocation.alpha, report.allocation.alpha)
    assert np.array_equal(rebuilt.allocation.beta, report.allocation.beta)
    assert rebuilt.allocation.alpha.dtype == report.allocation.alpha.dtype
    assert rebuilt.allocation.beta.dtype == report.allocation.beta.dtype


def test_roundtrip_config_and_cache_stats():
    config = SolverConfig.for_method("lprg", seed=5, warm_start=False)
    report = Solver(config).solve(_problem(), rng=1)
    rebuilt = SolveReport.from_dict(report.to_dict())
    assert rebuilt.config == config
    assert rebuilt.cache_stats == report.cache_stats
    assert rebuilt.cache_stats["n_solves"] == 1


def test_lp_stats_survive_when_present():
    report = Solver(SolverConfig(method="lprg")).solve(_problem(), rng=2)
    data = report.to_dict()
    rebuilt = SolveReport.from_dict(json.loads(json.dumps(data)))
    assert rebuilt.lp_stats == report.lp_stats
    if report.lp_stats is not None:
        assert rebuilt.meta == {"lp_stats": report.lp_stats}


def test_meta_is_projected_not_carried():
    """Only lp_stats survives serialization; raw meta objects do not."""
    report = Solver(SolverConfig(method="greedy")).solve(_problem(), rng=4)
    report.meta["raw_object"] = object()  # never JSON-serializable
    data = report.to_dict()
    json.dumps(data)  # would raise if meta leaked wholesale
    assert "raw_object" not in data
    rebuilt = SolveReport.from_dict(data)
    assert "raw_object" not in rebuilt.meta


def test_none_allocation_and_none_config_roundtrip():
    report = SolveReport(
        method="lp", objective="maxmin", value=1.5, allocation=None,
        runtime=0.0, n_lp_solves=1,
    )
    rebuilt = SolveReport.from_dict(json.loads(json.dumps(report.to_dict())))
    assert rebuilt.allocation is None
    assert rebuilt.config is None
    assert rebuilt.to_dict() == report.to_dict()
