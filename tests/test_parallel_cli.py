"""CLI coverage for the parallel-campaign flags: ``--jobs``,
``--checkpoint``/``--resume`` and the streaming flags
``--stream``/``--row-sink`` — including fail-fast validation (bad flag
combinations and unwritable sink paths must error before any sweep
work) and a smoke run of the real ``python -m repro.experiments`` entry
point with workers."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.cli import build_parser, main

REPO = Path(__file__).resolve().parents[1]


class TestParser:
    def test_jobs_flag_on_every_sweep_command(self):
        parser = build_parser()
        for argv in (
            ["figure5", "--jobs", "3"],
            ["figure6", "--jobs", "3"],
            ["figure7", "--jobs", "3"],
            ["headline", "--jobs", "3"],
            ["trends", "--jobs", "3"],
        ):
            assert parser.parse_args(argv).jobs == 3

    def test_jobs_defaults_to_serial(self):
        assert build_parser().parse_args(["headline"]).jobs == 1

    def test_checkpoint_and_resume_flags(self):
        args = build_parser().parse_args(
            ["headline", "--checkpoint", "x.ckpt", "--resume"]
        )
        assert args.checkpoint == "x.ckpt" and args.resume
        args = build_parser().parse_args(["trends"])
        assert args.checkpoint is None and not args.resume

    def test_jobs_zero_rejected_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["headline", "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_resume_requires_checkpoint(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["headline", "--resume"])
        assert excinfo.value.code == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_stream_flags_on_sweep_commands(self):
        parser = build_parser()
        for command in ("figure5", "figure6", "figure7", "headline"):
            args = parser.parse_args([command, "--stream"])
            assert args.stream and args.row_sink is None
        args = parser.parse_args(
            ["headline", "--stream", "--row-sink", "rows.jsonl"]
        )
        assert args.stream and args.row_sink == "rows.jsonl"

    def test_row_sink_requires_stream(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["headline", "--row-sink", "rows.jsonl"])
        assert excinfo.value.code == 2
        assert "--row-sink requires --stream" in capsys.readouterr().err

    def test_unwritable_row_sink_fails_up_front(self, tmp_path):
        """A sink path in a missing directory must raise SolverError
        before any sweep task runs (not crash mid-campaign)."""
        from repro.util.errors import SolverError

        missing = tmp_path / "no-such-dir" / "rows.jsonl"
        with pytest.raises(SolverError, match="does not exist"):
            main([
                "headline", "--settings", "2", "--platforms", "1",
                "--stream", "--row-sink", str(missing),
            ])

    def test_row_sink_directory_path_fails_up_front(self, tmp_path):
        from repro.util.errors import SolverError

        with pytest.raises(SolverError, match="is a directory"):
            main([
                "headline", "--settings", "2", "--platforms", "1",
                "--stream", "--row-sink", str(tmp_path),
            ])


class TestJobsEquivalence:
    def test_headline_output_independent_of_jobs(self, capsys):
        argv = ["headline", "--settings", "2", "--platforms", "1", "--seed", "3"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert "LPRG/G" in serial
        assert serial == parallel

    def test_figure5_output_independent_of_jobs(self, capsys):
        argv = [
            "figure5", "--k", "4", "--settings-per-k", "1",
            "--platforms", "1", "--seed", "5",
        ]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert "Figure 5" in serial
        assert serial == parallel


class TestStreamEquivalence:
    def test_headline_output_independent_of_stream(self, capsys):
        argv = ["headline", "--settings", "2", "--platforms", "1", "--seed", "3"]
        assert main(argv) == 0
        materialised = capsys.readouterr().out
        assert main(argv + ["--stream"]) == 0
        streamed = capsys.readouterr().out
        assert "LPRG/G" in materialised
        assert materialised == streamed

    def test_figure5_output_independent_of_stream_and_jobs(self, capsys):
        argv = [
            "figure5", "--k", "4", "--settings-per-k", "1",
            "--platforms", "1", "--seed", "5",
        ]
        assert main(argv) == 0
        materialised = capsys.readouterr().out
        assert main(argv + ["--stream", "--jobs", "2"]) == 0
        streamed = capsys.readouterr().out
        assert "Figure 5" in materialised
        assert materialised == streamed

    def test_headline_stream_writes_row_sink(self, capsys, tmp_path):
        from repro.experiments.persistence import load_rows_jsonl

        sink = tmp_path / "rows.jsonl"
        assert main([
            "headline", "--settings", "2", "--platforms", "1",
            "--seed", "3", "--stream", "--row-sink", str(sink),
        ]) == 0
        capsys.readouterr()
        rows = load_rows_jsonl(sink)
        # 2 settings x 1 platform x 2 objectives x (lp + greedy + lprg)
        assert len(rows) == 12
        assert {r.method for r in rows} == {"lp", "greedy", "lprg"}


class TestCheckpointFlags:
    def test_headline_checkpoint_then_resume(self, capsys, tmp_path):
        ckpt = str(tmp_path / "headline.ckpt")
        argv = [
            "headline", "--settings", "2", "--platforms", "1",
            "--seed", "3", "--checkpoint", ckpt,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert os.path.exists(ckpt)
        assert main(argv + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert first == resumed

    def test_trends_checkpoint_written(self, capsys, tmp_path):
        ckpt = tmp_path / "trends.ckpt"
        assert main([
            "trends", "--settings", "2", "--platforms", "1",
            "--seed", "2", "--checkpoint", str(ckpt),
        ]) == 0
        assert "LPR failure stats" in capsys.readouterr().out
        content = ckpt.read_text()
        assert '"kind": "campaign"' in content and '"kind": "task"' in content


@pytest.mark.slow
class TestModuleEntryPoint:
    def test_python_dash_m_smoke_with_jobs(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.experiments", "trends",
                "--settings", "2", "--platforms", "1", "--seed", "2",
                "--jobs", "2",
            ],
            capture_output=True, text=True, env=env, cwd=REPO, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "LPR failure stats" in proc.stdout
