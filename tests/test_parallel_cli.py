"""CLI coverage for the parallel-campaign flags: ``--jobs``,
``--checkpoint`` and ``--resume``, including a smoke run of the real
``python -m repro.experiments`` entry point with workers."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.cli import build_parser, main

REPO = Path(__file__).resolve().parents[1]


class TestParser:
    def test_jobs_flag_on_every_sweep_command(self):
        parser = build_parser()
        for argv in (
            ["figure5", "--jobs", "3"],
            ["figure6", "--jobs", "3"],
            ["figure7", "--jobs", "3"],
            ["headline", "--jobs", "3"],
            ["trends", "--jobs", "3"],
        ):
            assert parser.parse_args(argv).jobs == 3

    def test_jobs_defaults_to_serial(self):
        assert build_parser().parse_args(["headline"]).jobs == 1

    def test_checkpoint_and_resume_flags(self):
        args = build_parser().parse_args(
            ["headline", "--checkpoint", "x.ckpt", "--resume"]
        )
        assert args.checkpoint == "x.ckpt" and args.resume
        args = build_parser().parse_args(["trends"])
        assert args.checkpoint is None and not args.resume

    def test_jobs_zero_rejected_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["headline", "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_resume_requires_checkpoint(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["headline", "--resume"])
        assert excinfo.value.code == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err


class TestJobsEquivalence:
    def test_headline_output_independent_of_jobs(self, capsys):
        argv = ["headline", "--settings", "2", "--platforms", "1", "--seed", "3"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert "LPRG/G" in serial
        assert serial == parallel

    def test_figure5_output_independent_of_jobs(self, capsys):
        argv = [
            "figure5", "--k", "4", "--settings-per-k", "1",
            "--platforms", "1", "--seed", "5",
        ]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert "Figure 5" in serial
        assert serial == parallel


class TestCheckpointFlags:
    def test_headline_checkpoint_then_resume(self, capsys, tmp_path):
        ckpt = str(tmp_path / "headline.ckpt")
        argv = [
            "headline", "--settings", "2", "--platforms", "1",
            "--seed", "3", "--checkpoint", ckpt,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert os.path.exists(ckpt)
        assert main(argv + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert first == resumed

    def test_trends_checkpoint_written(self, capsys, tmp_path):
        ckpt = tmp_path / "trends.ckpt"
        assert main([
            "trends", "--settings", "2", "--platforms", "1",
            "--seed", "2", "--checkpoint", str(ckpt),
        ]) == 0
        assert "LPR failure stats" in capsys.readouterr().out
        content = ckpt.read_text()
        assert '"kind": "campaign"' in content and '"kind": "task"' in content


@pytest.mark.slow
class TestModuleEntryPoint:
    def test_python_dash_m_smoke_with_jobs(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.experiments", "trends",
                "--settings", "2", "--platforms", "1", "--seed", "2",
                "--jobs", "2",
            ],
            capture_output=True, text=True, env=env, cwd=REPO, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "LPR failure stats" in proc.stdout
