"""Tests for repro.schedule.rationalize."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.allocation import Allocation
from repro.schedule.rationalize import (
    quantize_allocation,
    rationalize_allocation,
)
from repro.util.errors import ScheduleError


def _alloc(alpha_entries, K=3):
    a = Allocation.zeros(K)
    for (k, l), v in alpha_entries.items():
        a.alpha[k, l] = v
    return a


class TestQuantize:
    def test_exact_grid_values_preserved(self):
        a = _alloc({(0, 0): 1.5, (1, 2): 0.25})
        q = quantize_allocation(a, denominator=4)
        assert q.alloc.alpha[0, 0] == 1.5
        assert q.alloc.alpha[1, 2] == 0.25
        assert q.period in (1, 2, 4)
        # loads/period reproduces alpha exactly
        assert np.allclose(q.loads / q.period, q.alloc.alpha)

    def test_rounds_down(self):
        a = _alloc({(0, 1): 1 / 3})
        q = quantize_allocation(a, denominator=10)
        assert q.alloc.alpha[0, 1] <= 1 / 3
        assert q.alloc.alpha[0, 1] == pytest.approx(0.3)

    def test_period_reduced_by_gcd(self):
        a = _alloc({(0, 0): 0.5})
        q = quantize_allocation(a, denominator=1000)
        assert q.period == 2
        assert q.loads[0, 0] == 1

    def test_zero_allocation(self):
        q = quantize_allocation(Allocation.zeros(2), denominator=100)
        assert q.period == 1 and q.loads.sum() == 0

    def test_near_grid_snaps_up(self):
        # float noise below a grid point must not lose a whole step
        a = _alloc({(0, 0): 2.0 - 1e-12})
        q = quantize_allocation(a, denominator=10)
        assert q.alloc.alpha[0, 0] == pytest.approx(2.0)

    def test_invalid_denominator(self):
        with pytest.raises(ScheduleError):
            quantize_allocation(Allocation.zeros(1), denominator=0)

    def test_throughputs(self):
        a = _alloc({(0, 0): 1.0, (0, 1): 0.5})
        q = quantize_allocation(a, denominator=2)
        assert q.throughputs[0] == pytest.approx(1.5)

    @given(st.integers(min_value=0, max_value=10_000))
    def test_quantized_never_exceeds_original(self, seed):
        rng = np.random.default_rng(seed)
        a = Allocation.zeros(3)
        a.alpha[:] = rng.uniform(0, 5, (3, 3))
        q = quantize_allocation(a, denominator=97)
        assert np.all(q.alloc.alpha <= a.alpha + 1e-9)
        assert np.all(q.loads >= 0)
        assert np.allclose(q.loads / q.period, q.alloc.alpha)


class TestRationalize:
    def test_exact_lcm_period(self):
        a = _alloc({(0, 0): 0.5, (1, 1): 1 / 3})
        q = rationalize_allocation(a, max_denominator=10)
        assert q.period == 6
        assert q.loads[0, 0] == 3 and q.loads[1, 1] == 2

    def test_period_overflow_guard(self):
        a = Allocation.zeros(4)
        # Prime-ish denominators make the lcm blow up.
        primes = [97, 89, 83, 79, 73, 71, 67, 61, 59, 53, 47, 43]
        idx = 0
        for k in range(4):
            for l in range(4):
                a.alpha[k, l] = 1.0 / primes[idx % len(primes)]
                idx += 1
        with pytest.raises(ScheduleError):
            rationalize_allocation(a, max_denominator=100, max_period=10**6)

    def test_negative_noise_clamped(self):
        a = _alloc({(0, 1): -1e-15})
        q = rationalize_allocation(a)
        assert q.loads.sum() == 0
