"""Property: online re-scheduling is exact and replayable.

For ANY valid event trace — drift, failures, recoveries, application
churn, interleaved in any stateful-legal order — two invariants must
hold bit-for-bit:

* **oracle exactness**: the incremental (carried-basis) scheduler's
  report has the same ``state_dict`` as a from-scratch
  (``warm_start=False``) scheduler's, and every record matches its
  from-scratch oracle exactly. Warm-starting buys pivots, never floats.
* **JSON replayability**: running the scheduler on the trace recovered
  from its own JSON serialization reproduces the same ``state_dict`` —
  a saved trace file is a complete replay artifact.
"""

from __future__ import annotations

import json

from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro import SteadyStateProblem
from repro.dynamic import DynamicOptions, EventTrace, OnlineScheduler, PlatformEvent
from repro.platform import line_platform

FAST = DynamicOptions(replay=False)

_FACTORS = (0.25, 0.5, 0.8, 1.0, 1.25, 2.0, 4.0)
_PAYOFFS = (0.5, 1.0, 1.5, 2.0)


@st.composite
def legal_traces(draw, n_clusters: int, link_names: "tuple[str, ...]"):
    """A stateful-legal trace: fail/recover strictly paired, churn only
    departs live apps and re-arrives on empty slots, at least one
    application stays live (an app-free program has no objective)."""
    n_events = draw(st.integers(min_value=1, max_value=8))
    failed_nodes: set = set()
    failed_links: set = set()
    live = set(range(n_clusters))
    events = []
    t = 0.0
    for _ in range(n_events):
        t += draw(st.sampled_from((0.5, 1.0, 1.5)))
        moves = ["cpu-drift", "bw-drift"]
        if len(failed_nodes) < n_clusters - 1:
            moves.append("node-fail")
        if failed_nodes:
            moves.append("node-recover")
        if failed_links != set(link_names):
            moves.append("link-fail")
        if failed_links:
            moves.append("link-recover")
        if len(live) > 1:
            moves.append("app-depart")
        if len(live) < n_clusters:
            moves.append("app-arrive")
        kind = draw(st.sampled_from(sorted(moves)))
        if kind in ("cpu-drift", "bw-drift"):
            events.append(PlatformEvent(
                time=t, kind=kind,
                target=draw(st.integers(0, n_clusters - 1)),
                factor=draw(st.sampled_from(_FACTORS)),
            ))
        elif kind == "node-fail":
            k = draw(st.sampled_from(sorted(set(range(n_clusters)) - failed_nodes)))
            failed_nodes.add(k)
            events.append(PlatformEvent(time=t, kind=kind, target=k))
        elif kind == "node-recover":
            k = draw(st.sampled_from(sorted(failed_nodes)))
            failed_nodes.discard(k)
            events.append(PlatformEvent(time=t, kind=kind, target=k))
        elif kind == "link-fail":
            name = draw(st.sampled_from(sorted(set(link_names) - failed_links)))
            failed_links.add(name)
            events.append(PlatformEvent(time=t, kind=kind, target=name))
        elif kind == "link-recover":
            name = draw(st.sampled_from(sorted(failed_links)))
            failed_links.discard(name)
            events.append(PlatformEvent(time=t, kind=kind, target=name))
        elif kind == "app-depart":
            k = draw(st.sampled_from(sorted(live)))
            live.discard(k)
            events.append(PlatformEvent(time=t, kind=kind, target=k))
        else:
            k = draw(st.sampled_from(sorted(set(range(n_clusters)) - live)))
            live.add(k)
            events.append(PlatformEvent(
                time=t, kind="app-arrive", target=k,
                payoff=draw(st.sampled_from(_PAYOFFS)),
            ))
    return EventTrace(seed=0, events=tuple(events))


@given(data=st.data())
@hyp_settings(max_examples=20, deadline=None)
def test_incremental_matches_from_scratch_and_replays_from_json(data):
    n_clusters = data.draw(st.integers(min_value=2, max_value=4), label="K")
    platform = line_platform(
        n_clusters, speed=100.0, g=50.0, bw=10.0, max_connect=4
    )
    trace = data.draw(
        legal_traces(n_clusters, tuple(platform.links)), label="trace"
    )
    problem = SteadyStateProblem(platform, objective="maxmin")

    warm = OnlineScheduler(problem, options=FAST, warm_start=True).run(trace)
    assert all(r.oracle_match for r in warm.records), warm.summary()

    # The trace recovered from its own JSON wire form drives a
    # from-scratch-mode scheduler to the identical fingerprint.
    recovered = EventTrace.from_dict(json.loads(json.dumps(trace.to_dict())))
    assert recovered == trace
    cold = OnlineScheduler(
        problem, options=FAST, warm_start=False
    ).run(recovered)
    assert warm.state_dict() == cold.state_dict()
