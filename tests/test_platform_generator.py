"""Tests for repro.platform.generator."""

import numpy as np
import pytest
from hypothesis import given

from repro import PlatformSpec, generate_platform
from repro.platform.generator import (
    fully_connected_platform,
    line_platform,
    star_platform,
)
from repro.util.errors import PlatformError

from tests.strategies import platform_specs


def _spec(**overrides):
    defaults = dict(
        n_clusters=8,
        connectivity=0.5,
        heterogeneity=0.4,
        mean_g=200.0,
        mean_bw=30.0,
        mean_max_connect=10.0,
    )
    defaults.update(overrides)
    return PlatformSpec(**defaults)


class TestSpecValidation:
    def test_zero_clusters_rejected(self):
        with pytest.raises(PlatformError):
            _spec(n_clusters=0)

    def test_connectivity_range(self):
        with pytest.raises(PlatformError):
            _spec(connectivity=1.5)

    def test_heterogeneity_range(self):
        with pytest.raises(PlatformError):
            _spec(heterogeneity=1.0)

    def test_speed_heterogeneity_range(self):
        with pytest.raises(PlatformError):
            _spec(speed_heterogeneity=-0.1)

    def test_positive_means_required(self):
        for field in ("mean_g", "mean_bw", "mean_max_connect", "speed"):
            with pytest.raises(PlatformError):
                _spec(**{field: 0.0})

    def test_with_clusters(self):
        assert _spec().with_clusters(12).n_clusters == 12


class TestGeneration:
    def test_deterministic_given_seed(self):
        a = generate_platform(_spec(), rng=5)
        b = generate_platform(_spec(), rng=5)
        assert a.speeds.tolist() == b.speeds.tolist()
        assert sorted(a.links) == sorted(b.links)

    def test_heterogeneity_bounds_respected(self):
        spec = _spec(heterogeneity=0.4, speed_heterogeneity=0.2)
        platform = generate_platform(spec, rng=1)
        g = platform.local_capacities
        assert np.all(g >= 200.0 * 0.6 - 1e-9) and np.all(g <= 200.0 * 1.4 + 1e-9)
        s = platform.speeds
        assert np.all(s >= 80.0 - 1e-9) and np.all(s <= 120.0 + 1e-9)
        for link in platform.links.values():
            assert 30.0 * 0.6 - 1e-9 <= link.bw <= 30.0 * 1.4 + 1e-9
            assert link.max_connect >= 1

    def test_speed_fixed_without_heterogeneity(self):
        platform = generate_platform(_spec(speed_heterogeneity=0.0), rng=2)
        assert np.all(platform.speeds == 100.0)

    def test_connectivity_extremes(self):
        empty = generate_platform(_spec(connectivity=0.0), rng=0)
        assert len(empty.links) == 0
        full = generate_platform(_spec(connectivity=1.0, n_clusters=5), rng=0)
        assert len(full.links) == 10  # complete graph

    def test_single_cluster(self):
        platform = generate_platform(_spec(n_clusters=1), rng=0)
        assert platform.n_clusters == 1 and len(platform.links) == 0

    def test_ensure_connected(self):
        spec = _spec(connectivity=0.0, ensure_connected=True, n_clusters=6)
        platform = generate_platform(spec, rng=3)
        # A Hamiltonian path connects everything.
        for l in range(1, 6):
            assert platform.has_route(0, l)

    def test_extra_routers_preserve_route_bottlenecks(self):
        base = generate_platform(_spec(connectivity=1.0, n_clusters=4), rng=9)
        spliced = generate_platform(
            _spec(connectivity=1.0, n_clusters=4, extra_routers=3), rng=9
        )
        assert len(spliced.routers) == len(base.routers) + 3
        # Pass-through routers host no cluster.
        cluster_routers = {c.router for c in spliced.clusters}
        assert len(spliced.routers - cluster_routers) == 3

    def test_max_connect_at_least_one(self):
        spec = _spec(mean_max_connect=1.0, heterogeneity=0.8)
        platform = generate_platform(spec, rng=11)
        assert all(li.max_connect >= 1 for li in platform.links.values())

    @given(platform_specs())
    def test_generated_platforms_are_valid(self, spec):
        platform = generate_platform(spec, rng=0)
        assert platform.n_clusters == spec.n_clusters
        # Structural invariants enforced at construction; routing total.
        for (k, l) in platform.routed_pairs():
            route = platform.route(k, l)
            assert route.routers[0] == platform.clusters[k].router
            assert route.routers[-1] == platform.clusters[l].router


class TestPresets:
    def test_star(self):
        p = star_platform(3)
        assert p.n_clusters == 4
        assert p.route(1, 2).links == ("spoke1", "spoke2")

    def test_star_needs_leaf(self):
        with pytest.raises(PlatformError):
            star_platform(0)

    def test_line_route_length(self):
        p = line_platform(5)
        assert len(p.route(0, 4)) == 4

    def test_line_needs_cluster(self):
        with pytest.raises(PlatformError):
            line_platform(0)

    def test_fully_connected_heterogeneous(self):
        p = fully_connected_platform(3, speeds=[1.0, 2.0, 3.0], g=[4.0, 5.0, 6.0])
        assert p.speeds.tolist() == [1.0, 2.0, 3.0]
        assert p.local_capacities.tolist() == [4.0, 5.0, 6.0]
        assert all(len(p.route(k, l)) == 1 for k in range(3) for l in range(3) if k != l)

    def test_fully_connected_length_mismatch(self):
        with pytest.raises(PlatformError):
            fully_connected_platform(3, speeds=[1.0])
