"""Tests for repro.util.rational."""

import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.rational import as_fraction, common_period, fractionize, lcm_many


class TestAsFraction:
    def test_exact_integer(self):
        assert as_fraction(3.0) == Fraction(3)

    def test_near_integer_snaps(self):
        assert as_fraction(2.9999999999999) == Fraction(3)

    def test_simple_fraction(self):
        assert as_fraction(0.5) == Fraction(1, 2)

    def test_denominator_bound(self):
        f = as_fraction(math.pi, max_denominator=100)
        assert f.denominator <= 100

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            as_fraction(float("inf"))
        with pytest.raises(ValueError):
            as_fraction(float("nan"))

    @given(st.integers(min_value=-1000, max_value=1000), st.integers(min_value=1, max_value=50))
    def test_roundtrip_small_rationals(self, num, den):
        f = Fraction(num, den)
        assert as_fraction(float(f), max_denominator=10**6) == f


class TestLcmMany:
    def test_empty_is_one(self):
        assert lcm_many([]) == 1

    def test_basic(self):
        assert lcm_many([4, 6]) == 12

    def test_single(self):
        assert lcm_many([7]) == 7

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            lcm_many([0])
        with pytest.raises(ValueError):
            lcm_many([3, -1])

    @given(st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=6))
    def test_divides_all(self, values):
        lcm = lcm_many(values)
        assert all(lcm % v == 0 for v in values)


class TestCommonPeriod:
    def test_fraction_list(self):
        assert common_period([Fraction(1, 2), Fraction(1, 3)]) == 6

    def test_mapping_input(self):
        assert common_period({"a": Fraction(3, 4), "b": Fraction(5, 6)}) == 12

    def test_empty(self):
        assert common_period([]) == 1

    def test_integers_have_period_one(self):
        assert common_period([Fraction(5), Fraction(7)]) == 1


class TestFractionize:
    def test_zeros_are_dropped(self):
        out = fractionize(np.array([[0.0, 0.5], [0.25, 0.0]]))
        assert set(out) == {(0, 1), (1, 0)}
        assert out[(0, 1)] == Fraction(1, 2)

    def test_respects_max_denominator(self):
        out = fractionize([1 / 3], max_denominator=3)
        assert out[(0,)] == Fraction(1, 3)
