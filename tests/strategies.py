"""Hypothesis strategies for platforms, problems, allocations and
sweep-campaign shapes (the streaming-equivalence harness)."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro import PlatformSpec, SteadyStateProblem, generate_platform


@st.composite
def platform_specs(draw, max_clusters: int = 7):
    """Random but sane generator specs (values chosen so that LP solves
    stay fast and the greedy cannot degenerate into drip allocations)."""
    return PlatformSpec(
        n_clusters=draw(st.integers(min_value=1, max_value=max_clusters)),
        connectivity=draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        ),
        heterogeneity=draw(st.sampled_from([0.0, 0.2, 0.4, 0.6, 0.8])),
        mean_g=draw(st.sampled_from([50.0, 150.0, 250.0, 450.0])),
        mean_bw=draw(st.sampled_from([10.0, 30.0, 50.0, 90.0])),
        mean_max_connect=draw(st.sampled_from([2.0, 5.0, 15.0, 45.0])),
        speed_heterogeneity=draw(st.sampled_from([0.0, 0.4, 0.8])),
    )


@st.composite
def platforms(draw, max_clusters: int = 7):
    """A generated platform plus the seed that produced it."""
    spec = draw(platform_specs(max_clusters=max_clusters))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return generate_platform(spec, rng=seed)


@st.composite
def problems(draw, max_clusters: int = 6, objective=None):
    """A full steady-state problem with random payoffs (some possibly 0)."""
    platform = draw(platforms(max_clusters=max_clusters))
    K = platform.n_clusters
    payoffs = draw(
        st.lists(
            st.sampled_from([0.0, 0.5, 1.0, 2.0]),
            min_size=K,
            max_size=K,
        )
    )
    if objective is None:
        objective = draw(st.sampled_from(["maxmin", "sum"]))
    return SteadyStateProblem(platform, payoffs, objective=objective)


@st.composite
def sweep_shapes(
    draw,
    max_settings: int = 5,
    max_replicates: int = 4,
    max_methods: int = 3,
):
    """Random sweep-campaign shapes for the streaming equivalence suite.

    Covers the execution dimensions the streamed fold must be invariant
    to: grid size, replicate count, method/objective subsets, worker
    count, chunk size, and a resume point (``crash_after`` tasks folded
    before the simulated interruption; ``None`` = no crash).
    """
    n_settings = draw(st.integers(min_value=1, max_value=max_settings))
    n_replicates = draw(st.integers(min_value=1, max_value=max_replicates))
    n_tasks = n_settings * n_replicates
    methods = draw(
        st.lists(
            st.sampled_from(["greedy", "lpr", "lprg"]),
            min_size=1,
            max_size=max_methods,
            unique=True,
        )
    )
    objectives = draw(
        st.sampled_from([("maxmin",), ("sum",), ("maxmin", "sum")])
    )
    return {
        "n_settings": n_settings,
        "n_replicates": n_replicates,
        "methods": tuple(methods),
        "objectives": objectives,
        "jobs": draw(st.integers(min_value=1, max_value=3)),
        "chunk_size": draw(st.sampled_from([None, 1, 2, 5])),
        "crash_after": draw(
            st.one_of(
                st.none(),
                st.integers(min_value=0, max_value=max(0, n_tasks - 1)),
            )
        ),
        "seed": draw(st.integers(min_value=0, max_value=2**31 - 1)),
    }


@st.composite
def completion_orders(draw, n_tasks: int):
    """A permutation of task indices: the order completions arrive in."""
    return draw(st.permutations(list(range(n_tasks))))


@st.composite
def shard_partitions(draw, n_tasks: int, max_shards: int = 6):
    """A contiguous partition of ``n_tasks`` into shard ranges.

    Mirrors what the :mod:`repro.distrib` planner may legally produce —
    any ordered list of ``(start, stop)`` ranges covering ``[0,
    n_tasks)`` without gaps — including *empty* shards (repeated cut
    points) and more shards than tasks, the edge cases the merge layer
    must treat as exact no-ops.
    """
    n_shards = draw(st.integers(min_value=1, max_value=max_shards))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=n_tasks),
                min_size=n_shards - 1,
                max_size=n_shards - 1,
            )
        )
    )
    bounds = [0] + cuts + [n_tasks]
    return [(bounds[i], bounds[i + 1]) for i in range(n_shards)]


@st.composite
def small_graphs(draw, max_vertices: int = 7):
    """Edge-list graphs for the NP-hardness reduction tests."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
        if possible
        else st.just([])
    )
    return n, edges
