"""Hypothesis strategies for platforms, problems and allocations."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro import PlatformSpec, SteadyStateProblem, generate_platform


@st.composite
def platform_specs(draw, max_clusters: int = 7):
    """Random but sane generator specs (values chosen so that LP solves
    stay fast and the greedy cannot degenerate into drip allocations)."""
    return PlatformSpec(
        n_clusters=draw(st.integers(min_value=1, max_value=max_clusters)),
        connectivity=draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        ),
        heterogeneity=draw(st.sampled_from([0.0, 0.2, 0.4, 0.6, 0.8])),
        mean_g=draw(st.sampled_from([50.0, 150.0, 250.0, 450.0])),
        mean_bw=draw(st.sampled_from([10.0, 30.0, 50.0, 90.0])),
        mean_max_connect=draw(st.sampled_from([2.0, 5.0, 15.0, 45.0])),
        speed_heterogeneity=draw(st.sampled_from([0.0, 0.4, 0.8])),
    )


@st.composite
def platforms(draw, max_clusters: int = 7):
    """A generated platform plus the seed that produced it."""
    spec = draw(platform_specs(max_clusters=max_clusters))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return generate_platform(spec, rng=seed)


@st.composite
def problems(draw, max_clusters: int = 6, objective=None):
    """A full steady-state problem with random payoffs (some possibly 0)."""
    platform = draw(platforms(max_clusters=max_clusters))
    K = platform.n_clusters
    payoffs = draw(
        st.lists(
            st.sampled_from([0.0, 0.5, 1.0, 2.0]),
            min_size=K,
            max_size=K,
        )
    )
    if objective is None:
        objective = draw(st.sampled_from(["maxmin", "sum"]))
    return SteadyStateProblem(platform, payoffs, objective=objective)


@st.composite
def small_graphs(draw, max_vertices: int = 7):
    """Edge-list graphs for the NP-hardness reduction tests."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
        if possible
        else st.just([])
    )
    return n, edges
