"""Telemetry is provably invisible to results.

The tentpole contract of the observability subsystem: turning tracing
and metrics on, off, or on for only some of the workers **never**
changes a result bit. Timestamps live in spans and metric values only —
they are excluded from result state dicts by construction — so the
accumulator state (minus the measured ``runtime_groups``, which differ
between *any* two runs of the same plan, telemetry or not) and solve
reports must be identical across every telemetry configuration.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Solver, SolverConfig, TelemetryOptions, build_scenario
from repro.experiments.config import sample_settings

SETTINGS = sample_settings(1, rng=0, k_values=[3])


def scrub(state: dict) -> str:
    """Canonical accumulator state minus the wall-clock runtime groups."""
    return json.dumps(
        {k: v for k, v in state.items() if k != "runtime_groups"},
        sort_keys=True,
    )


def sweep_state(telemetry: "TelemetryOptions | None", jobs: int = 1) -> str:
    config = SolverConfig(stream=True, jobs=jobs, telemetry=telemetry)
    accumulator = Solver(config).sweep(
        SETTINGS, methods=("lprr",), objectives=("maxmin",),
        n_platforms=2, rng=7,
    )
    return scrub(accumulator.state_dict())


@pytest.fixture(scope="module")
def baseline() -> str:
    return sweep_state(None)


@settings(max_examples=8, deadline=None)
@given(trace=st.booleans(), metrics=st.booleans(), jobs=st.sampled_from([1, 2]))
def test_sweep_state_is_bitwise_identical_under_any_telemetry(
    trace, metrics, jobs, baseline
):
    telemetry = (
        TelemetryOptions(trace=trace, metrics=metrics)
        if (trace or metrics)
        else None
    )
    assert sweep_state(telemetry, jobs=jobs) == baseline


def test_solve_report_identical_with_and_without_telemetry(tmp_path):
    problem = build_scenario("das2", rng=np.random.default_rng(3))

    def report(telemetry):
        config = SolverConfig(method="lprr", telemetry=telemetry)
        return Solver(config).solve(problem, rng=3)

    plain = report(None)
    traced = report(
        TelemetryOptions(
            trace=True,
            trace_path=str(tmp_path / "trace.jsonl"),
            metrics=True,
        )
    )
    assert traced.value == plain.value
    assert np.array_equal(traced.allocation.alpha, plain.allocation.alpha)
    assert np.array_equal(traced.allocation.beta, plain.allocation.beta)
    assert traced.lp_stats == plain.lp_stats
    # and the telemetry side really did observe the solve
    assert (tmp_path / "trace.jsonl").exists()


def test_mixed_telemetry_within_one_process(baseline):
    """Alternating telemetry per call leaves every result untouched."""
    states = [
        sweep_state(TelemetryOptions(trace=True)),
        sweep_state(None),
        sweep_state(TelemetryOptions(metrics=True)),
        sweep_state(TelemetryOptions(trace=True, metrics=True)),
    ]
    assert all(state == baseline for state in states)


def test_telemetry_state_never_enters_result_dicts(tmp_path):
    """No span, tracer, or registry object leaks into report meta."""
    telemetry = TelemetryOptions(trace=True, metrics=True)
    solver = Solver(SolverConfig(method="lprr", telemetry=telemetry))
    report = solver.solve(build_scenario("das2", rng=np.random.default_rng(1)))
    payload = json.dumps(report.to_dict())  # JSON-safe end to end
    for forbidden in ("Tracer", "Span", "MetricsRegistry"):
        assert forbidden not in payload
