"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro import (
    PlatformSpec,
    SteadyStateProblem,
    fully_connected_platform,
    generate_platform,
    line_platform,
    star_platform,
)

# Keep property-based tests fast and deterministic in CI.
settings.register_profile(
    "ci",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
settings.load_profile("ci")


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def line3():
    """Three clusters in a chain, plenty of everything."""
    return line_platform(3, speed=100.0, g=50.0, bw=10.0, max_connect=4)


@pytest.fixture
def star5():
    """Hub + 4 leaves."""
    return star_platform(4, g=80.0, bw=20.0, max_connect=3)


@pytest.fixture
def complete4():
    """Fully connected 4-cluster platform with heterogeneous speeds."""
    return fully_connected_platform(
        4, speeds=[50.0, 100.0, 150.0, 200.0], g=60.0, bw=15.0, max_connect=2
    )


@pytest.fixture
def random_platform_factory():
    """Factory: (seed, K) -> a moderately heterogeneous random platform."""

    def make(seed: int = 0, n_clusters: int = 6, **overrides):
        defaults = dict(
            n_clusters=n_clusters,
            connectivity=0.5,
            heterogeneity=0.5,
            mean_g=200.0,
            mean_bw=30.0,
            mean_max_connect=10.0,
            speed_heterogeneity=0.5,
        )
        defaults.update(overrides)
        return generate_platform(PlatformSpec(**defaults), rng=seed)

    return make


@pytest.fixture
def problem_factory(random_platform_factory):
    """Factory: seeded random problem with narrow-band payoffs."""

    def make(seed: int = 0, n_clusters: int = 6, objective: str = "maxmin", **overrides):
        platform = random_platform_factory(seed, n_clusters, **overrides)
        payoffs = np.random.default_rng(seed + 999).uniform(0.8, 1.2, n_clusters)
        return SteadyStateProblem(platform, payoffs, objective=objective)

    return make
