"""Tests for the warm-started LP re-solve subsystem (repro.lp.session).

The contract under test: an :class:`LPSession` — in-place mutation,
fixed-variable presolve, basis carry — must agree with a *fresh*
``build_lp`` + cold HiGHS solve at every step of a re-solve sequence,
for both objectives, and the heuristics riding on it must keep their
published invariants (validity, LP-bound domination, and for LPRR
bitwise warm/cold allocation identity on pinned seeds).
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro import SteadyStateProblem, solve
from repro.heuristics.base import registry
from repro.lp.builder import (
    _COOBuilder,
    LPBuildCache,
    LPInstance,
    build_lp,
    use_build_cache,
)
from repro.lp.scipy_backend import solve_lp_scipy
from repro.lp.session import (
    AUTO_SIZE_LIMIT,
    LPSession,
    prefer_session,
    resolve_lp_backend,
)
from repro.lp.simplex import simplex_solve
from repro.util.errors import InfeasibleError

from tests.strategies import problems


def _floor_fix(value: float) -> float:
    """A fixing value that keeps the LP feasible (round down, snapped)."""
    return float(max(0.0, np.floor(value + 1e-9)))


class TestSimplexWarmStart:
    def test_reuse_own_basis_is_free(self):
        c = [3, 5]
        A = [[1, 0], [0, 2], [3, 2]]
        b = [4, 12, 18]
        cold = simplex_solve(c, A, b)
        assert cold.ok and cold.basis is not None
        warm = simplex_solve(c, A, b, initial_basis=cold.basis)
        assert warm.ok and warm.warm_started
        assert warm.iterations == 0  # already optimal
        assert warm.value == pytest.approx(cold.value)
        assert warm.x == pytest.approx(cold.x)

    def test_warm_start_after_rhs_change(self):
        c = [3, 5]
        A = np.array([[1.0, 0.0], [0.0, 2.0], [3.0, 2.0]])
        cold = simplex_solve(c, A, [4, 12, 18])
        warm = simplex_solve(c, A, [4, 12, 17], initial_basis=cold.basis)
        ref = simplex_solve(c, A, [4, 12, 17])
        assert warm.ok
        assert warm.value == pytest.approx(ref.value)
        assert warm.iterations <= ref.iterations

    def test_invalid_basis_falls_back_cold(self):
        c = [3, 5]
        A = [[1, 0], [0, 2], [3, 2]]
        b = [4, 12, 18]
        ref = simplex_solve(c, A, b)
        for bogus in ([0, 1], [0, 0, 1], [0, 1, 99]):
            res = simplex_solve(c, A, b, initial_basis=np.array(bogus))
            assert res.ok and not res.warm_started
            assert res.value == pytest.approx(ref.value)

    def test_infeasible_carried_basis_falls_back(self):
        c = [1.0]
        A = np.array([[1.0]])
        cold = simplex_solve(c, A, [5.0])  # x = 5, x basic
        # Tighten the row so the carried basis (x basic at 2) stays
        # feasible, then flip the row sign so it cannot be.
        warm = simplex_solve(c, np.array([[-1.0]]), [-2.0], bounds=[(0, 4)],
                             initial_basis=cold.basis)
        assert warm.ok
        assert warm.x[0] == pytest.approx(4.0)

    def test_bounds_as_array_pair(self):
        c = [1, 1]
        A = [[1, 1]]
        b = [100]
        lst = simplex_solve(c, A, b, bounds=[(0, 3), (0, 4)])
        arr = simplex_solve(
            c, A, b, bounds=(np.zeros(2), np.array([3.0, 4.0]))
        )
        assert lst.ok and arr.ok
        assert arr.value == pytest.approx(lst.value) == pytest.approx(7.0)


class TestSessionMatchesColdHiGHS:
    """LPSession vs fresh build_lp + solve_lp_scipy, across objectives."""

    @pytest.mark.parametrize("objective", ["maxmin", "sum"])
    def test_first_solve_matches(self, problem_factory, objective):
        for seed in range(3):
            problem = problem_factory(seed=seed, n_clusters=5, objective=objective)
            session = LPSession(build_lp(problem))
            got = session.solve()
            ref = solve_lp_scipy(build_lp(problem))
            assert got.value == pytest.approx(ref.value, rel=1e-6, abs=1e-6)

    @pytest.mark.parametrize("objective", ["maxmin", "sum"])
    def test_fixing_sequence_matches(self, problem_factory, objective):
        """Drive an LPRR-like fixing sequence; every re-solve must agree
        with a cold HiGHS solve of an equivalently-bounded fresh LP."""
        problem = problem_factory(seed=2, n_clusters=5, objective=objective)
        instance = build_lp(problem)
        session = LPSession(build_lp(problem))
        n_alpha, n_beta = instance.index.n_alpha, instance.index.n_beta
        solution = session.solve()
        for i in range(n_beta):
            var = n_alpha + i
            session.fix_variable(var, _floor_fix(solution.x[var]))
            solution = session.solve()
            ref_inst = build_lp(problem)
            np.copyto(ref_inst.lb, session.instance.lb)
            np.copyto(ref_inst.ub, session.instance.ub)
            ref = solve_lp_scipy(ref_inst)
            assert solution.value == pytest.approx(ref.value, rel=1e-6, abs=1e-6)
        assert session.stats.n_warm > 0  # the basis carry actually engaged

    @given(problems(max_clusters=5), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15)
    def test_random_fixing_property(self, problem, seed):
        """Property: for random problems and random fix subsets, the
        session agrees with fresh cold HiGHS solves."""
        rng = np.random.default_rng(seed)
        instance = build_lp(problem)
        session = LPSession(build_lp(problem))
        solution = session.solve()
        ref = solve_lp_scipy(instance)
        assert solution.value == pytest.approx(ref.value, rel=1e-6, abs=1e-6)
        n_alpha, n_beta = instance.index.n_alpha, instance.index.n_beta
        if n_beta == 0:
            return
        n_fix = int(rng.integers(1, n_beta + 1))
        for i in rng.choice(n_beta, size=n_fix, replace=False):
            var = n_alpha + int(i)
            value = _floor_fix(solution.x[var])
            session.fix_variable(var, value)
            instance.lb[var] = instance.ub[var] = value
            instance.invalidate_bounds()
        got = session.solve()
        ref = solve_lp_scipy(instance)
        assert got.value == pytest.approx(ref.value, rel=1e-6, abs=1e-6)

    def test_rhs_update_matches(self, problem_factory):
        """The lprg-it pattern: shrink b_ub in place, re-solve warm."""
        problem = problem_factory(seed=1, n_clusters=5)
        instance = build_lp(problem)
        session = LPSession(build_lp(problem))
        session.solve()
        shrunk = instance.b_ub * 0.7
        got = session.solve(b_ub=shrunk)
        ref_inst = build_lp(problem)
        np.copyto(ref_inst.b_ub, shrunk)
        ref = solve_lp_scipy(ref_inst)
        assert got.value == pytest.approx(ref.value, rel=1e-6, abs=1e-6)


class TestPresolve:
    def test_fixed_vars_eliminated_and_restored(self, problem_factory):
        """Round-trip: fixing every beta must shrink the solved program
        but return a full-length x with the pinned values bit-exact.

        Presolve elimination is a tableau-engine feature (the revised
        engine freezes fixed variables instead of eliminating them), so
        this pins ``engine="tableau"``.
        """
        problem = problem_factory(seed=0, n_clusters=5)
        instance = build_lp(problem)
        session = LPSession(build_lp(problem), engine="tableau")
        solution = session.solve()
        n_alpha, n_beta = instance.index.n_alpha, instance.index.n_beta
        fixed_values = {}
        for i in range(n_beta):
            var = n_alpha + i
            value = _floor_fix(solution.x[var])
            session.fix_variable(var, value)
            fixed_values[var] = value
        got = session.solve()
        assert got.x.shape == (instance.n_vars,)
        assert session.stats.vars_eliminated >= n_beta
        for var, value in fixed_values.items():
            assert got.x[var] == value  # exact, not approximate
        # Connection-count rows lose all their variables -> dropped.
        assert session.stats.rows_dropped > 0
        ref_inst = build_lp(problem)
        np.copyto(ref_inst.lb, session.instance.lb)
        np.copyto(ref_inst.ub, session.instance.ub)
        assert got.value == pytest.approx(
            solve_lp_scipy(ref_inst).value, rel=1e-6, abs=1e-6
        )

    def test_infeasible_fixing_detected(self, problem_factory):
        """Pinning a beta above its route capacity must raise, exactly
        like the cold HiGHS path does."""
        problem = problem_factory(seed=0, n_clusters=5)
        instance = build_lp(problem)
        n_alpha = instance.index.n_alpha
        bad = float(instance.ub[n_alpha]) + 5.0
        session = LPSession(build_lp(problem))
        session.instance.lb[n_alpha] = session.instance.ub[n_alpha] = bad
        session.instance.invalidate_bounds()
        with pytest.raises(InfeasibleError):
            session.solve()

    def test_fully_fixed_program(self):
        """All variables pinned: the session must answer without a solver."""
        from repro import star_platform

        platform = star_platform(2, g=50.0, bw=10.0, max_connect=3)
        problem = SteadyStateProblem(platform, [1.0, 1.0, 0.0], objective="sum")
        session = LPSession(build_lp(problem))
        inst = session.instance
        inst.lb[:] = 0.0
        inst.ub[:] = 0.0
        inst.invalidate_bounds()
        got = session.solve()
        assert got.value == pytest.approx(0.0)
        assert np.all(got.x == 0.0)


class TestColdReferencePath:
    def test_cold_session_is_deterministic(self, problem_factory):
        problem = problem_factory(seed=3, n_clusters=4)
        a = LPSession(build_lp(problem), warm_start=False).solve()
        b = LPSession(build_lp(problem), warm_start=False).solve()
        assert np.array_equal(a.x, b.x)
        assert a.value == b.value

    def test_warm_cold_call_matches_cold_session(self, problem_factory):
        """solve(cold=True) on a warm session must be bitwise-identical
        to a warm_start=False session (shared final-solve arithmetic)."""
        problem = problem_factory(seed=3, n_clusters=4)
        warm = LPSession(build_lp(problem))
        cold = LPSession(build_lp(problem), warm_start=False)
        warm.solve()  # prime a basis; must not leak into the cold call
        a = warm.solve(cold=True)
        b = cold.solve()
        b2 = cold.solve()
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(b.x, b2.x)


class TestHeuristicWarmColdEquivalence:
    """Warm-vs-cold invariants of the rewired heuristics."""

    @pytest.mark.parametrize("objective", ["maxmin", "sum"])
    def test_lprr_bitwise_identical(self, problem_factory, objective):
        """Pinned reference seeds: warm and cold LPRR must produce
        bitwise-identical allocations (the bench asserts this sweep-wide)."""
        for seed in range(3):
            problem = problem_factory(seed=seed, n_clusters=5, objective=objective)
            warm = solve(problem, "lprr", rng=seed, warm_start=True,
                         lp_backend="session")
            cold = solve(problem, "lprr", rng=seed, warm_start=False,
                         lp_backend="session")
            assert np.array_equal(warm.allocation.alpha, cold.allocation.alpha)
            assert np.array_equal(warm.allocation.beta, cold.allocation.beta)
            assert warm.value == cold.value

    def test_lprr_scipy_escape_hatch(self, problem_factory):
        problem = problem_factory(seed=1, n_clusters=5)
        legacy = solve(problem, "lprr", rng=0, lp_backend="scipy")
        assert problem.check(legacy.allocation).ok
        assert "lp_stats" not in legacy.meta
        assert legacy.meta["lp_backend"] == "scipy"

    def test_lprr_warm_solves_fewer_iterations(self, problem_factory):
        problem = problem_factory(seed=2, n_clusters=5)
        warm = solve(problem, "lprr", rng=7, warm_start=True, lp_backend="session")
        cold = solve(problem, "lprr", rng=7, warm_start=False, lp_backend="session")
        assert warm.meta["lp_stats"]["iterations"] < cold.meta["lp_stats"]["iterations"]
        assert warm.meta["lp_stats"]["n_warm"] > 0
        assert cold.meta["lp_stats"]["n_warm"] == 0

    @pytest.mark.parametrize("objective", ["maxmin", "sum"])
    def test_lprg_it_incremental_vs_rebuild(self, problem_factory, objective):
        """The incremental-update warm path must stay valid, LP-bounded,
        and in the same quality band as the rebuild-per-round reference
        (bitwise identity is not guaranteed: degenerate LPs admit
        multiple optimal vertices and the two backends may round
        different ones)."""
        lp_bound = None
        for seed in range(3):
            problem = problem_factory(seed=seed, n_clusters=5, objective=objective)
            lp_bound = solve(problem, "lp").value
            warm = solve(problem, "lprg-it", warm_start=True, lp_backend="session")
            legacy = solve(problem, "lprg-it", lp_backend="scipy")
            assert problem.check(warm.allocation).ok
            assert warm.value <= lp_bound + 1e-6
            assert legacy.value <= lp_bound + 1e-6
            if legacy.value > 0:
                assert warm.value >= 0.85 * legacy.value

    def test_bnb_warm_matches_cold_and_milp(self, problem_factory):
        for seed in (0, 8):
            problem = problem_factory(seed=seed, n_clusters=4)
            warm = solve(problem, "bnb", warm_start=True)
            cold = solve(problem, "bnb", warm_start=False)
            exact = solve(problem, "milp")
            assert warm.value == pytest.approx(cold.value, rel=1e-5, abs=1e-5)
            assert warm.value == pytest.approx(exact.value, rel=1e-5, abs=1e-5)

    @pytest.mark.parametrize("objective", ["maxmin", "sum"])
    def test_all_allocating_heuristics_stay_valid(self, problem_factory, objective):
        """Every registered allocation-producing method keeps its
        contract with the session subsystem in the loop."""
        problem = problem_factory(seed=4, n_clusters=5, objective=objective)
        lp_bound = solve(problem, "lp").value
        for name in sorted(registry()):
            if name == "lp":
                continue
            result = solve(problem, name, rng=0)
            assert problem.check(result.allocation).ok, name
            assert result.value <= lp_bound + 1e-5, name


class TestAutoBackendPolicy:
    def test_small_instances_prefer_session(self, problem_factory):
        problem = problem_factory(seed=0, n_clusters=4)
        instance = build_lp(problem)
        assert prefer_session(instance)
        result = solve(problem, "lprr", rng=0)
        assert result.meta["lp_backend"] == "session"

    def test_large_instances_stay_on_session(self, problem_factory):
        """The revised engine retired the dense-tableau size cliff:
        auto keeps the session path even past the old limit."""
        problem = problem_factory(seed=0, n_clusters=12)
        instance = build_lp(problem)
        assert instance.n_vars + instance.n_rows > AUTO_SIZE_LIMIT
        assert prefer_session(instance)
        result = solve(problem, "lprr", rng=0)
        assert result.meta["lp_backend"] == "session"

    def test_tableau_engine_keeps_size_cliff(self, problem_factory):
        """``engine="tableau"`` still honours AUTO_SIZE_LIMIT — O(m*n)
        tableau rewrites lose to a cold HiGHS call past it."""
        small = build_lp(problem_factory(seed=0, n_clusters=4))
        large = build_lp(problem_factory(seed=0, n_clusters=12))
        assert prefer_session(small, engine="tableau")
        assert not prefer_session(large, engine="tableau")
        assert resolve_lp_backend(large, "auto", engine="tableau") == "scipy"
        assert resolve_lp_backend(large, "auto", engine="revised") == "session"


class TestBoundsListCache:
    def test_cache_hit_and_invalidate(self, problem_factory):
        instance = build_lp(problem_factory(seed=0, n_clusters=4))
        first = instance.bounds_list()
        assert instance.bounds_list() is first  # cached object
        var = instance.index.n_alpha
        instance.lb[var] = instance.ub[var] = 1.0
        instance.invalidate_bounds()
        fresh = instance.bounds_list()
        assert fresh is not first
        assert fresh[var] == (1.0, 1.0)

    def test_with_bounds_does_not_share_cache(self, problem_factory):
        instance = build_lp(problem_factory(seed=0, n_clusters=4))
        instance.bounds_list()
        clone = instance.with_bounds(instance.lb + 1.0, instance.ub)
        assert clone.bounds_list()[0][0] == pytest.approx(
            instance.bounds_list()[0][0] + 1.0
        )


class TestCOOBuilderSetMany:
    def test_set_many_equals_repeated_set(self):
        rows = [0, 2, 1, 2]
        cols = [1, 0, 1, 2]
        vals = [1.0, -3.0, 2.5, 4.0]
        a = _COOBuilder()
        for _ in range(3):
            a.new_row(1.0, "r")
        for r, c, v in zip(rows, cols, vals):
            a.set(r, c, v)
        b = _COOBuilder()
        for _ in range(3):
            b.new_row(1.0, "r")
        b.set_many(rows, cols, vals)
        A, _ = a.to_csr(3)
        B, _ = b.to_csr(3)
        assert np.array_equal(A.toarray(), B.toarray())

    def test_set_many_broadcasts_scalar(self):
        b = _COOBuilder()
        b.new_row(0.0, "r")
        b.set_many([0, 0], [0, 2], 1.0)
        A, _ = b.to_csr(3)
        assert np.array_equal(A.toarray(), [[1.0, 0.0, 1.0]])

    def test_set_many_shape_mismatch(self):
        b = _COOBuilder()
        b.new_row(0.0, "r")
        with pytest.raises(ValueError):
            b.set_many([0, 1], [0], 1.0)

    def test_row_id_lookup(self, problem_factory):
        instance = build_lp(problem_factory(seed=0, n_clusters=4))
        assert instance.row_id("compute[0]") == 0
        assert instance.has_row("local[1]")
        assert not instance.has_row("nonsense[0]")
        assert instance.row_labels[instance.row_id("local[2]")] == "local[2]"


def _with_duplicate_rows(instance: LPInstance, k: int = 3) -> LPInstance:
    """A copy of ``instance`` with its first ``k`` rows appended again —
    an exactly rank-deficient row set (every duplicated row is redundant
    and the optimal vertex is degenerate)."""
    A = sp.vstack([instance.A_ub, instance.A_ub[:k]], format="csr")
    b = np.concatenate([instance.b_ub, instance.b_ub[:k]])
    labels = list(instance.row_labels) + [f"dup[{i}]" for i in range(k)]
    return LPInstance(
        obj=instance.obj.copy(),
        A_ub=A,
        b_ub=b,
        lb=instance.lb.copy(),
        ub=instance.ub.copy(),
        index=instance.index,
        row_labels=labels,
    )


class TestDegenerateAndRedundantLPs:
    """Session solves of degenerate programs must agree with cold HiGHS.

    Redundant rows make every basis that touches them singular-adjacent
    and every vertex degenerate — exactly the regime where the old
    tableau tolerances and a naive basis carry used to bite.
    """

    def test_redundant_rows_match_cold_highs(self, problem_factory):
        problem = problem_factory(seed=1, n_clusters=5)
        template = build_lp(problem)
        session = LPSession(_with_duplicate_rows(template))
        got = session.solve()
        ref_inst = _with_duplicate_rows(template)
        ref = solve_lp_scipy(ref_inst)
        assert got.value == pytest.approx(ref.value, rel=1e-6, abs=1e-6)
        # Warm re-solve on the redundant program after pinning a beta.
        var = template.index.n_alpha
        value = _floor_fix(got.x[var])
        session.fix_variable(var, value)
        got2 = session.solve()
        ref_inst.lb[var] = ref_inst.ub[var] = value
        ref_inst.invalidate_bounds()
        ref2 = solve_lp_scipy(ref_inst)
        assert got2.value == pytest.approx(ref2.value, rel=1e-6, abs=1e-6)
        assert session.stats.n_warm >= 1

    def test_degenerate_zero_capacity_rows(self, problem_factory):
        """Zeroing local-traffic rows forces a degenerate vertex (many
        constraints tight at 0); session must still match cold HiGHS."""
        problem = problem_factory(seed=2, n_clusters=5)
        instance = build_lp(problem)
        K = problem.platform.n_clusters
        b = instance.b_ub.copy()
        for k in range(K):
            b[instance.row_id(f"local[{k}]")] = 0.0
        session = LPSession(build_lp(problem))
        session.solve()
        got = session.solve(b_ub=b)  # warm, on the degenerate program
        ref_inst = build_lp(problem)
        np.copyto(ref_inst.b_ub, b)
        ref = solve_lp_scipy(ref_inst)
        assert got.value == pytest.approx(ref.value, rel=1e-6, abs=1e-6)


class TestWarmStartAfterBoundFlip:
    def test_tightened_upper_bound_dual_repair(self, problem_factory):
        """Cutting a basic variable's upper bound below its optimal value
        leaves the carried basis primal-infeasible; the dual simplex must
        repair it and land on the cold HiGHS optimum — deterministically
        (an identically-driven second session reproduces x bit-for-bit)."""
        problem = problem_factory(seed=3, n_clusters=5)
        instance = build_lp(problem)

        def drive():
            session = LPSession(build_lp(problem))
            first = session.solve()
            n_alpha, n_beta = instance.index.n_alpha, instance.index.n_beta
            betas = first.x[n_alpha : n_alpha + n_beta]
            var = n_alpha + int(np.argmax(betas))
            assert first.x[var] > 0.5  # something to cut
            new_ub = float(first.x[var]) / 2.0
            session.instance.ub[var] = new_ub
            session.instance.invalidate_bounds()
            return session, session.solve(), var, new_ub

        session, got, var, new_ub = drive()
        assert session.stats.n_warm >= 1
        ref_inst = build_lp(problem)
        ref_inst.ub[var] = new_ub
        ref_inst.invalidate_bounds()
        ref = solve_lp_scipy(ref_inst)
        assert got.value == pytest.approx(ref.value, rel=1e-6, abs=1e-6)
        _, again, _, _ = drive()
        assert np.array_equal(got.x, again.x)

    def test_bound_flip_lower_raised(self, problem_factory):
        """Raising a lower bound above the optimum (forcing a beta up)
        flips the active bound; warm re-solve must match cold HiGHS."""
        problem = problem_factory(seed=4, n_clusters=5)
        instance = build_lp(problem)
        session = LPSession(build_lp(problem))
        first = session.solve()
        n_alpha = instance.index.n_alpha
        # Force the first beta at least one unit above its LP value,
        # staying within its (finite) route-capacity upper bound.
        var = n_alpha
        target = float(np.floor(first.x[var]) + 1.0)
        if target > instance.ub[var]:
            pytest.skip("route already saturated on this seed")
        session.instance.lb[var] = target
        session.instance.invalidate_bounds()
        got = session.solve()
        ref_inst = build_lp(problem)
        ref_inst.lb[var] = target
        ref_inst.invalidate_bounds()
        ref = solve_lp_scipy(ref_inst)
        assert got.value == pytest.approx(ref.value, rel=1e-6, abs=1e-6)


class TestDualResolveEquivalence:
    def test_rhs_tightening_uses_dual_steps(self, problem_factory):
        """The B&B/lprg-it pattern — tighten one b_ub row, re-solve warm
        — must take dual pivots (not a cold restart) and agree with a
        fresh cold HiGHS solve.

        Note: a *uniform* ``b_ub * 0.8`` shrink keeps the carried basis
        primal-feasible (basic values just scale), so only an uneven cut
        exercises the dual repair.
        """
        problem = problem_factory(seed=5, n_clusters=5)
        instance = build_lp(problem)
        session = LPSession(build_lp(problem))
        session.solve()
        shrunk = instance.b_ub.copy()
        shrunk[instance.row_id("compute[0]")] *= 0.25
        got = session.solve(b_ub=shrunk)
        assert session.stats.n_warm == 1
        assert session.stats.dual_steps > 0
        ref_inst = build_lp(problem)
        np.copyto(ref_inst.b_ub, shrunk)
        ref = solve_lp_scipy(ref_inst)
        assert got.value == pytest.approx(ref.value, rel=1e-6, abs=1e-6)

    def test_uniform_shrink_stays_primal(self, problem_factory):
        """The complementary case: a uniform RHS scale keeps the carried
        basis primal-feasible — warm re-solve without any dual pivots."""
        problem = problem_factory(seed=5, n_clusters=5)
        instance = build_lp(problem)
        session = LPSession(build_lp(problem))
        session.solve()
        got = session.solve(b_ub=instance.b_ub * 0.8)
        assert session.stats.n_warm == 1
        assert session.stats.dual_steps == 0
        ref_inst = build_lp(problem)
        np.copyto(ref_inst.b_ub, instance.b_ub * 0.8)
        ref = solve_lp_scipy(ref_inst)
        assert got.value == pytest.approx(ref.value, rel=1e-6, abs=1e-6)


class TestEngineKnob:
    def test_lprr_engine_recorded_and_valid(self, problem_factory):
        problem = problem_factory(seed=0, n_clusters=4)
        revised = solve(problem, "lprr", rng=0)
        tableau = solve(
            problem, "lprr", rng=0, lp_engine="tableau", lp_backend="session"
        )
        assert revised.meta["lp_engine"] == "revised"
        assert tableau.meta["lp_engine"] == "tableau"
        assert problem.check(revised.allocation).ok
        assert problem.check(tableau.allocation).ok

    def test_bnb_engine_knob(self, problem_factory):
        problem = problem_factory(seed=0, n_clusters=4)
        revised = solve(problem, "bnb", lp_engine="revised")
        tableau = solve(problem, "bnb", lp_engine="tableau")
        assert revised.value == pytest.approx(tableau.value, rel=1e-6, abs=1e-6)

    def test_config_validates_engine_and_sharing(self):
        from repro.api import SolverConfig
        from repro.util.errors import SolverError

        assert SolverConfig(method="lprr").lp_engine == "revised"
        with pytest.raises(SolverError, match="lp_engine"):
            SolverConfig(method="lprr", lp_engine="bogus")
        with pytest.raises(SolverError, match="share_bases"):
            SolverConfig(method="lprr", share_bases=True, jobs=2)
        cfg = SolverConfig.for_method("lprr", lp_engine="tableau", share_bases=True)
        assert cfg.to_dict()["lp_engine"] == "tableau"
        assert SolverConfig.from_dict(cfg.to_dict()) == cfg

    def test_session_rejects_unknown_engine(self, problem_factory):
        instance = build_lp(problem_factory(seed=0, n_clusters=4))
        with pytest.raises(ValueError):
            LPSession(instance, engine="bogus")


class TestShareBases:
    def test_seeds_across_sessions_same_template(self, problem_factory):
        """Two sharing sessions on the same template: the second's first
        solve warm-starts from the first's published basis and lands on
        the identical canonical vertex."""
        problem = problem_factory(seed=6, n_clusters=5)
        cache = LPBuildCache()
        with use_build_cache(cache):
            s1 = LPSession(build_lp(problem), share_bases=True)
            a = s1.solve()
            s2 = LPSession(build_lp(problem), share_bases=True)
            b = s2.solve()
        assert cache.basis_stores >= 1
        assert cache.basis_hits >= 1
        assert s2.stats.n_warm == 1  # seeded, not cold
        assert np.array_equal(a.x, b.x)
        assert a.value == b.value

    def test_off_by_default_and_outside_cache(self, problem_factory):
        problem = problem_factory(seed=6, n_clusters=5)
        cache = LPBuildCache()
        with use_build_cache(cache):
            s = LPSession(build_lp(problem))  # share_bases omitted
            s.solve()
        assert cache.basis_stores == 0
        # Sharing without an active cache is a silent no-op.
        lone = LPSession(build_lp(problem), share_bases=True)
        lone.solve()
        assert lone.stats.n_warm == 0

    def test_solver_share_bases_end_to_end(self, problem_factory):
        """Through the facade: a sharing Solver publishes bases to its
        SolverState cache across calls and keeps allocations identical
        to the non-sharing default (canonical vertices make the seeded
        path arrive at the same answers)."""
        from repro.api import Solver, SolverConfig

        problem = problem_factory(seed=7, n_clusters=5)
        sharing = Solver(SolverConfig.for_method("lprr", share_bases=True))
        plain = Solver(SolverConfig.for_method("lprr"))
        r1 = sharing.solve(problem, rng=0)
        r2 = sharing.solve(problem, rng=0)
        r_plain = plain.solve(problem, rng=0)
        assert sharing.state.lp_cache.stats()["basis_stores"] > 0
        assert sharing.state.lp_cache.stats()["basis_hits"] > 0
        assert plain.state.lp_cache.stats()["basis_stores"] == 0
        assert np.array_equal(r1.allocation.beta, r_plain.allocation.beta)
        assert np.array_equal(r1.allocation.beta, r2.allocation.beta)
        assert r1.value == r2.value == r_plain.value


class TestMutationApi:
    """The sparse in-place mutation surface added for online
    re-scheduling: pin/release with first-pin-wins snapshots, sparse
    RHS/bound edits, and the ``canon`` vertex-canonicalization knob."""

    def test_release_restores_the_pre_pin_box(self, problem_factory):
        problem = problem_factory(seed=3, n_clusters=4)
        session = LPSession(build_lp(problem))
        baseline = session.solve()
        var = session.instance.index.n_alpha  # first beta
        lo, hi = session.instance.lb[var], session.instance.ub[var]
        session.fix_variable(var, 0.0)
        pinned = session.solve()
        assert pinned.x[var] == 0.0
        assert session.pinned_variables == (var,)
        session.release_variable(var)
        assert session.pinned_variables == ()
        assert session.instance.lb[var] == lo
        assert session.instance.ub[var] == hi
        released = session.solve()
        assert released.value == pytest.approx(baseline.value, rel=1e-9)

    def test_repinning_keeps_the_first_snapshot(self, problem_factory):
        problem = problem_factory(seed=3, n_clusters=4)
        session = LPSession(build_lp(problem))
        var = session.instance.index.n_alpha
        lo, hi = session.instance.lb[var], session.instance.ub[var]
        session.fix_variable(var, 0.0)
        session.fix_variable(var, 1.0)  # move the pin; snapshot stays
        assert session.instance.lb[var] == session.instance.ub[var] == 1.0
        session.release_variable(var)
        assert session.instance.lb[var] == lo
        assert session.instance.ub[var] == hi

    def test_release_of_unpinned_variable_raises(self, problem_factory):
        session = LPSession(build_lp(problem_factory(seed=0, n_clusters=3)))
        with pytest.raises(ValueError, match="not pinned"):
            session.release_variable(0)
        session.fix_variable(0, 0.0)
        session.release_variable(0)
        with pytest.raises(ValueError, match="not pinned"):
            session.release_variable(0)  # double release surfaces too

    def test_set_rhs_matches_cold_solve_of_edited_program(self, problem_factory):
        problem = problem_factory(seed=1, n_clusters=4)
        session = LPSession(build_lp(problem))
        session.solve()
        session.set_rhs([0, 2], [session.instance.b_ub[0] * 0.5,
                                 session.instance.b_ub[2] * 0.25])
        got = session.solve()
        ref_inst = build_lp(problem)
        ref_inst.b_ub[0] *= 0.5
        ref_inst.b_ub[2] *= 0.25
        ref = solve_lp_scipy(ref_inst)
        assert got.value == pytest.approx(ref.value, rel=1e-6, abs=1e-6)

    def test_set_bounds_matches_cold_solve_of_edited_program(self, problem_factory):
        problem = problem_factory(seed=1, n_clusters=4)
        session = LPSession(build_lp(problem))
        solution = session.solve()
        var = int(np.argmax(solution.x))
        cap = solution.x[var] / 2.0
        session.set_bounds([var], ub=cap)
        got = session.solve()
        assert got.x[var] <= cap + 1e-9
        ref_inst = build_lp(problem)
        ref_inst.ub[var] = cap
        ref = solve_lp_scipy(ref_inst)
        assert got.value == pytest.approx(ref.value, rel=1e-6, abs=1e-6)

    def test_canon_knob_validated_and_value_preserving(self, problem_factory):
        problem = problem_factory(seed=5, n_clusters=4)
        with pytest.raises(ValueError, match="canon"):
            LPSession(build_lp(problem), canon="bogus")
        default = LPSession(build_lp(problem)).solve()
        full = LPSession(build_lp(problem), canon="all").solve()
        # The secondary objective only picks a vertex on the optimal
        # face; the primary value is untouched.
        assert full.value == pytest.approx(default.value, rel=1e-9)

    def test_canon_all_is_deterministic(self, problem_factory):
        problem = problem_factory(seed=5, n_clusters=4)
        first = LPSession(build_lp(problem), canon="all").solve()
        second = LPSession(build_lp(problem), canon="all").solve()
        assert first.value == second.value
        assert np.array_equal(first.x, second.x)
