"""Tests for repro.schedule.periodic and timeline."""

import numpy as np
import pytest

from repro import SteadyStateProblem, line_platform, solve
from repro.schedule import build_periodic_schedule, unrolled_timeline
from repro.schedule.timeline import total_produced
from repro.util.errors import ScheduleError


@pytest.fixture
def schedule(problem_factory):
    problem = problem_factory(seed=0, n_clusters=5)
    result = solve(problem, "lprg")
    return build_periodic_schedule(problem.platform, result.allocation, denominator=500)


class TestPeriodicSchedule:
    def test_valid_by_construction(self, schedule):
        schedule.validate()  # must not raise

    def test_throughput_matches_loads(self, schedule):
        assert np.allclose(
            schedule.throughputs, schedule.loads.sum(axis=1) / schedule.period
        )

    def test_compute_time_within_period(self, schedule):
        for k in range(schedule.n_clusters):
            assert schedule.compute_time(k) <= schedule.period * (1 + 1e-6)

    def test_link_time_within_period(self, schedule):
        for k in range(schedule.n_clusters):
            assert schedule.link_time(k) <= schedule.period * (1 + 1e-6)

    def test_as_allocation_is_valid(self, schedule, problem_factory):
        problem = problem_factory(seed=0, n_clusters=5)
        report = problem.check(schedule.as_allocation())
        assert report.ok, report.violations

    def test_describe(self, schedule):
        text = schedule.describe()
        assert "compute util" in text and "Tp=" in text

    def test_zero_speed_with_load_rejected(self):
        from repro import Cluster, Platform
        from repro.schedule.periodic import PeriodicSchedule

        platform = Platform([Cluster("A", 0.0, 1.0, "R0")], ["R0"], [])
        sched = PeriodicSchedule(
            platform=platform,
            period=10,
            loads=np.array([[5]], dtype=np.int64),
            beta=np.zeros((1, 1), dtype=np.int64),
        )
        with pytest.raises(ScheduleError):
            sched.validate()

    def test_overloaded_schedule_rejected(self):
        platform = line_platform(1)  # speed 100
        from repro.schedule.periodic import PeriodicSchedule

        sched = PeriodicSchedule(
            platform=platform,
            period=1,
            loads=np.array([[1000]], dtype=np.int64),
            beta=np.zeros((1, 1), dtype=np.int64),
        )
        with pytest.raises(ScheduleError):
            sched.validate()


class TestTimeline:
    def test_boundary_periods(self, schedule):
        plans = unrolled_timeline(schedule, 5)
        assert len(plans) == 5
        assert plans[0].computations == ()  # no computation first
        assert plans[-1].transfers == ()  # no communication last
        for plan in plans[1:-1]:
            assert plan.transfers and plan.computations

    def test_times_are_contiguous(self, schedule):
        plans = unrolled_timeline(schedule, 4)
        for prev, cur in zip(plans, plans[1:]):
            assert cur.start == pytest.approx(prev.end)

    def test_total_produced_is_p_minus_one_periods(self, schedule):
        P = 6
        plans = unrolled_timeline(schedule, P)
        produced = total_produced(plans, schedule.n_clusters)
        expected = schedule.loads.sum(axis=1) * (P - 1)
        assert np.allclose(produced, expected)

    def test_minimum_two_periods(self, schedule):
        with pytest.raises(ScheduleError):
            unrolled_timeline(schedule, 1)

    def test_transfer_connection_counts(self, schedule):
        plans = unrolled_timeline(schedule, 3)
        for t in plans[0].transfers:
            assert t.connections >= 1
            assert t.volume == schedule.loads[t.src, t.dst]
            assert t.app == t.src

    def test_plan_totals(self, schedule):
        plans = unrolled_timeline(schedule, 3)
        mid = plans[1]
        remote = schedule.loads.sum() - np.trace(schedule.loads)
        assert mid.total_transferred == pytest.approx(remote)
        assert mid.total_computed == pytest.approx(schedule.loads.sum())
