"""Tests for repro.simulation.fairness (max-min sharing with caps)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.simulation.fairness import FlowSpec, max_min_fair_rates, verify_rates
from repro.util.errors import SimulationError


class TestBasicSharing:
    def test_no_flows(self):
        assert max_min_fair_rates([], [10.0]).size == 0

    def test_single_flow_cap_bound(self):
        rates = max_min_fair_rates([FlowSpec(0, 1, cap=3.0)], [10.0, 10.0])
        assert rates[0] == pytest.approx(3.0)

    def test_single_flow_link_bound(self):
        rates = max_min_fair_rates([FlowSpec(0, 1, cap=100.0)], [4.0, 10.0])
        assert rates[0] == pytest.approx(4.0)

    def test_two_flows_share_source_link(self):
        flows = [FlowSpec(0, 1, cap=100.0), FlowSpec(0, 2, cap=100.0)]
        rates = max_min_fair_rates(flows, [10.0, 50.0, 50.0])
        assert rates.tolist() == pytest.approx([5.0, 5.0])

    def test_capped_flow_releases_share(self):
        # Flow 0 capped at 2; flow 1 takes the rest of g_0 = 10.
        flows = [FlowSpec(0, 1, cap=2.0), FlowSpec(0, 2, cap=100.0)]
        rates = max_min_fair_rates(flows, [10.0, 50.0, 50.0])
        assert rates[0] == pytest.approx(2.0)
        assert rates[1] == pytest.approx(8.0)

    def test_destination_link_counts(self):
        # Both flows converge on cluster 2 whose g = 6.
        flows = [FlowSpec(0, 2, cap=100.0), FlowSpec(1, 2, cap=100.0)]
        rates = max_min_fair_rates(flows, [50.0, 50.0, 6.0])
        assert rates.tolist() == pytest.approx([3.0, 3.0])

    def test_bidirectional_traffic_shares_one_link(self):
        # A->B and B->A both cross both links: each gets g/2.
        flows = [FlowSpec(0, 1, cap=100.0), FlowSpec(1, 0, cap=100.0)]
        rates = max_min_fair_rates(flows, [8.0, 8.0])
        assert rates.tolist() == pytest.approx([4.0, 4.0])

    def test_multi_bottleneck_cascade(self):
        # g = [6, 4, 100]: flow a (0->1) is limited by g_1 shared with c;
        # flow b (0->2) picks up the slack of g_0.
        flows = [
            FlowSpec(0, 1, cap=100.0),  # a
            FlowSpec(0, 2, cap=100.0),  # b
            FlowSpec(2, 1, cap=100.0),  # c
        ]
        rates = max_min_fair_rates(flows, [6.0, 4.0, 100.0])
        verify_rates(flows, rates, [6.0, 4.0, 100.0])
        # a and c share g_1 = 4 -> 2 each; b gets 6 - 2 = 4 from g_0.
        assert rates.tolist() == pytest.approx([2.0, 4.0, 2.0])

    def test_zero_capacity_starves(self):
        rates = max_min_fair_rates([FlowSpec(0, 1, cap=5.0)], [0.0, 10.0])
        assert rates[0] == pytest.approx(0.0)

    def test_infinite_cap_finite_link(self):
        rates = max_min_fair_rates([FlowSpec(0, 1, cap=float("inf"))], [7.0, 9.0])
        assert rates[0] == pytest.approx(7.0)

    def test_self_flow_rejected(self):
        with pytest.raises(SimulationError):
            FlowSpec(0, 0, cap=1.0)

    def test_negative_cap_rejected(self):
        with pytest.raises(SimulationError):
            FlowSpec(0, 1, cap=-1.0)


class TestVerifyRates:
    def test_detects_cap_violation(self):
        flows = [FlowSpec(0, 1, cap=1.0)]
        with pytest.raises(SimulationError):
            verify_rates(flows, np.array([2.0]), [10.0, 10.0])

    def test_detects_link_violation(self):
        flows = [FlowSpec(0, 1, cap=100.0)]
        with pytest.raises(SimulationError):
            verify_rates(flows, np.array([20.0]), [10.0, 30.0])


class TestProperties:
    @given(st.integers(min_value=0, max_value=100_000))
    def test_random_instances_feasible_and_maximal(self, seed):
        """Rates are always feasible, and no unfrozen flow could be
        increased without breaking a cap or a link (max-min maximality
        spot check: every flow is limited by its cap or by a saturated
        link)."""
        rng = np.random.default_rng(seed)
        n_clusters = int(rng.integers(2, 6))
        n_flows = int(rng.integers(1, 8))
        g = rng.uniform(0.5, 20.0, n_clusters)
        flows = []
        for _ in range(n_flows):
            src, dst = rng.choice(n_clusters, size=2, replace=False)
            cap = float(rng.uniform(0.1, 15.0))
            flows.append(FlowSpec(int(src), int(dst), cap))
        rates = max_min_fair_rates(flows, g)
        verify_rates(flows, rates, g)

        usage = np.zeros(n_clusters)
        for f, r in zip(flows, rates):
            usage[f.src] += r
            usage[f.dst] += r
        for f, r in zip(flows, rates):
            at_cap = r >= f.cap - 1e-6
            src_saturated = usage[f.src] >= g[f.src] - 1e-6
            dst_saturated = usage[f.dst] >= g[f.dst] - 1e-6
            assert at_cap or src_saturated or dst_saturated
