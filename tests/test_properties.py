"""Cross-module property-based tests: the paper's core invariants.

These are the load-bearing guarantees of the whole reproduction:

1. every heuristic always returns a *valid allocation* (Equations 1-4)
   on arbitrary generated platforms and payoff vectors;
2. the LP relaxation dominates every realizable method, and the exact
   MILP optimum sits between the heuristics and the LP bound;
3. LPRG dominates LPR by construction;
4. schedule reconstruction preserves feasibility and (quantized)
   throughput;
5. the simulator realises every reconstructed schedule exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import solve
from repro.schedule import build_periodic_schedule, quantize_allocation
from repro.simulation import FlowSimulator
from repro.simulation.metrics import throughput_ratios

from tests.strategies import problems


class TestHeuristicValidity:
    @given(problems(max_clusters=5))
    @settings(max_examples=20)
    def test_greedy_always_valid(self, problem):
        result = solve(problem, "greedy")
        report = problem.check(result.allocation)
        assert report.ok, report.violations

    @given(problems(max_clusters=5))
    @settings(max_examples=12)
    def test_lpr_always_valid(self, problem):
        result = solve(problem, "lpr")
        report = problem.check(result.allocation)
        assert report.ok, report.violations

    @given(problems(max_clusters=5))
    @settings(max_examples=12)
    def test_lprg_always_valid(self, problem):
        result = solve(problem, "lprg")
        report = problem.check(result.allocation)
        assert report.ok, report.violations

    @given(problems(max_clusters=4))
    @settings(max_examples=8)
    def test_lprr_always_valid(self, problem):
        result = solve(problem, "lprr", rng=0)
        report = problem.check(result.allocation)
        assert report.ok, report.violations


class TestDominanceChain:
    @given(problems(max_clusters=5))
    @settings(max_examples=10)
    def test_lp_geq_milp_geq_heuristics(self, problem):
        lp = solve(problem, "lp").value
        milp = solve(problem, "milp").value
        assert lp >= milp - 1e-5
        for method in ("greedy", "lpr", "lprg"):
            value = solve(problem, method).value
            assert milp >= value - 1e-5, method
            assert lp >= value - 1e-5, method

    @given(problems(max_clusters=5))
    @settings(max_examples=12)
    def test_lprg_dominates_lpr(self, problem):
        lpr = solve(problem, "lpr").value
        lprg = solve(problem, "lprg").value
        assert lprg >= lpr - 1e-9

    @given(problems(max_clusters=5))
    @settings(max_examples=12)
    def test_objective_value_consistency(self, problem):
        """A result's value always equals re-scoring its allocation."""
        for method in ("greedy", "lprg"):
            result = solve(problem, method)
            assert result.value == pytest.approx(
                problem.objective_value(result.allocation), abs=1e-9
            )


class TestSchedulePipeline:
    @given(problems(max_clusters=4, objective="maxmin"))
    @settings(max_examples=8)
    def test_quantization_preserves_feasibility(self, problem):
        alloc = solve(problem, "greedy").allocation
        q = quantize_allocation(alloc, denominator=128)
        report = problem.check(q.alloc)
        assert report.ok, report.violations
        assert np.all(q.throughputs <= alloc.throughputs + 1e-9)

    @given(problems(max_clusters=4, objective="maxmin"))
    @settings(max_examples=6)
    def test_simulator_realises_schedule(self, problem):
        alloc = solve(problem, "lprg").allocation
        schedule = build_periodic_schedule(problem.platform, alloc, denominator=64)
        # Reserved rates (the paper's implicit discipline): deadline-exact.
        reserved = FlowSimulator(problem.platform, rate_policy="reserved").run(
            schedule, n_periods=4
        )
        assert reserved.late_flows == 0
        assert np.allclose(
            throughput_ratios(reserved, schedule.throughputs), 1.0, atol=1e-9
        )
        # Max-min sharing: transfers may individually run late, but the
        # steady-state throughput claim must still hold.
        fair = FlowSimulator(problem.platform, rate_policy="maxmin").run(
            schedule, n_periods=4
        )
        assert np.allclose(
            throughput_ratios(fair, schedule.throughputs), 1.0, atol=1e-9
        )
