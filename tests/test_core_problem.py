"""Tests for repro.core.problem, application and objectives."""

import numpy as np
import pytest

from repro import (
    Application,
    MAXMIN,
    SUM,
    SteadyStateProblem,
    applications_for_platform,
    get_objective,
    line_platform,
)
from repro.core.application import payoff_vector
from repro.core.allocation import Allocation
from repro.util.errors import PlatformError


class TestApplication:
    def test_defaults(self):
        app = Application("A0")
        assert app.payoff == 1.0 and app.participates

    def test_zero_payoff_does_not_participate(self):
        assert not Application("A0", payoff=0.0).participates

    def test_negative_payoff_rejected(self):
        with pytest.raises(PlatformError):
            Application("A0", payoff=-1.0)

    def test_applications_for_platform_scalar(self):
        apps = applications_for_platform(3, 2.0)
        assert [a.payoff for a in apps] == [2.0, 2.0, 2.0]

    def test_applications_for_platform_sequence(self):
        apps = applications_for_platform(2, [1.0, 0.0])
        assert apps[1].payoff == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(PlatformError):
            applications_for_platform(3, [1.0])

    def test_payoff_vector(self):
        apps = applications_for_platform(3, [1.0, 2.0, 3.0])
        assert payoff_vector(apps).tolist() == [1.0, 2.0, 3.0]


class TestObjectives:
    def test_get_by_name(self):
        assert get_objective("sum") is SUM
        assert get_objective("MAXMIN") is MAXMIN
        assert get_objective(SUM) is SUM

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_objective("median")

    def test_sum_value(self):
        assert SUM.value([1.0, 2.0], [3.0, 4.0]) == 11.0

    def test_maxmin_value_excludes_zero_payoffs(self):
        assert MAXMIN.value([5.0, 100.0], [1.0, 0.0]) == 5.0
        assert MAXMIN.value([5.0, 1.0], [0.0, 0.0]) == 0.0

    def test_equality_and_hash(self):
        assert SUM == get_objective("sum")
        assert SUM != MAXMIN
        assert len({SUM, MAXMIN, get_objective("sum")}) == 2


class TestProblem:
    def test_default_applications(self):
        p = SteadyStateProblem(line_platform(3))
        assert len(p.applications) == 3
        assert np.all(p.payoffs == 1.0)
        assert p.objective is MAXMIN

    def test_payoff_shorthand(self):
        p = SteadyStateProblem(line_platform(2), [1.0, 0.0])
        assert p.payoffs.tolist() == [1.0, 0.0]
        assert p.active_mask.tolist() == [True, False]

    def test_explicit_applications(self):
        apps = applications_for_platform(2, [2.0, 3.0])
        p = SteadyStateProblem(line_platform(2), apps, objective="sum")
        assert p.objective is SUM

    def test_application_count_enforced(self):
        with pytest.raises(PlatformError):
            SteadyStateProblem(line_platform(3), applications_for_platform(2))

    def test_with_objective(self):
        p = SteadyStateProblem(line_platform(2), objective="maxmin")
        q = p.with_objective("sum")
        assert q.objective is SUM and q.platform is p.platform
        assert p.objective is MAXMIN  # original untouched

    def test_objective_value_and_check(self):
        p = SteadyStateProblem(line_platform(2), [1.0, 2.0], objective="sum")
        a = Allocation.zeros(2)
        a.alpha[0, 0] = 10.0
        a.alpha[1, 1] = 5.0
        assert p.objective_value(a) == 20.0
        assert p.check(a).ok

    def test_repr(self):
        p = SteadyStateProblem(line_platform(2), [1.0, 0.0])
        assert "active_apps=1" in repr(p)
