"""Tests for experiment-row persistence (JSONL / CSV round-trips)."""

import pytest

from repro.experiments import run_setting, Setting
from repro.experiments.aggregate import headline_ratios, mean_ratio_by_k
from repro.experiments.persistence import (
    load_rows_csv,
    load_rows_jsonl,
    row_from_dict,
    row_to_dict,
    save_rows_csv,
    save_rows_jsonl,
)


@pytest.fixture(scope="module")
def rows():
    setting = Setting(
        k=4, connectivity=0.6, heterogeneity=0.4,
        mean_g=250.0, mean_bw=30.0, mean_maxcon=15.0,
    )
    return run_setting(
        setting, methods=("greedy", "lprg"), objectives=("maxmin", "sum"),
        n_platforms=2, rng=1,
    )


class TestDictRoundTrip:
    def test_row_roundtrip(self, rows):
        for row in rows:
            clone = row_from_dict(row_to_dict(row))
            assert clone == row

    def test_dict_has_flat_keys(self, rows):
        d = row_to_dict(rows[0])
        assert d["K"] == 4 and "method" in d and "value" in d


class TestFileRoundTrips:
    def test_jsonl(self, rows, tmp_path):
        path = tmp_path / "rows.jsonl"
        assert save_rows_jsonl(rows, path) == len(rows)
        loaded = load_rows_jsonl(path)
        assert loaded == list(rows)

    def test_csv(self, rows, tmp_path):
        path = tmp_path / "rows.csv"
        assert save_rows_csv(rows, path) == len(rows)
        loaded = load_rows_csv(path)
        assert len(loaded) == len(rows)
        for a, b in zip(loaded, rows):
            assert a.method == b.method
            assert a.value == pytest.approx(b.value)
            assert a.setting == b.setting

    def test_aggregates_work_on_loaded_rows(self, rows, tmp_path):
        path = tmp_path / "rows.jsonl"
        save_rows_jsonl(rows, path)
        loaded = load_rows_jsonl(path)
        assert headline_ratios(loaded) == headline_ratios(list(rows))
        assert mean_ratio_by_k(loaded, "lprg", "sum") == mean_ratio_by_k(
            list(rows), "lprg", "sum"
        )

    def test_empty_jsonl(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n\n")
        assert load_rows_jsonl(path) == []
