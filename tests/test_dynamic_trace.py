"""Event-trace layer: schema validation, JSON round-trips, seeded
generator determinism.

The trace file format is a contract (``EVENT_TRACE_VERSION``): anything
a generator can emit must survive ``to_dict -> json -> from_dict``
unchanged, and anything malformed must fail loudly with an
:class:`EventTraceError` naming the offending field.
"""

from __future__ import annotations

import json

import pytest

from repro.dynamic import (
    EVENT_KINDS,
    EVENT_TRACE_VERSION,
    EventTrace,
    EventTraceError,
    PlatformEvent,
    churn_trace,
    drift_trace,
    failure_storm_trace,
)

LINKS = ("bb0", "bb1", "bb2")


def _families(seed: int):
    return {
        "drift": drift_trace(5, n_events=10, seed=seed),
        "storm": failure_storm_trace(5, LINKS, n_storms=4, seed=seed),
        "churn": churn_trace(5, n_cycles=3, seed=seed),
    }


class TestPlatformEvent:
    def test_valid_kinds_are_exactly_the_published_tuple(self):
        assert set(EVENT_KINDS) == {
            "cpu-drift", "bw-drift", "node-fail", "node-recover",
            "link-fail", "link-recover", "app-arrive", "app-depart",
        }

    def test_unknown_kind_rejected(self):
        with pytest.raises(EventTraceError, match="unknown event kind"):
            PlatformEvent(time=0.0, kind="meteor-strike", target=0)

    @pytest.mark.parametrize("time", [-1.0, float("nan"), float("inf")])
    def test_bad_time_rejected(self, time):
        with pytest.raises(EventTraceError, match="time"):
            PlatformEvent(time=time, kind="cpu-drift", target=0, factor=1.1)

    def test_cluster_kinds_need_int_targets(self):
        with pytest.raises(EventTraceError, match="cluster index"):
            PlatformEvent(time=0.0, kind="node-fail", target="c3")
        with pytest.raises(EventTraceError, match="cluster index"):
            PlatformEvent(time=0.0, kind="cpu-drift", target=True, factor=2.0)

    def test_link_kinds_need_str_targets(self):
        with pytest.raises(EventTraceError, match="backbone link name"):
            PlatformEvent(time=0.0, kind="link-fail", target=3)

    def test_drift_needs_positive_factor(self):
        with pytest.raises(EventTraceError, match="factor"):
            PlatformEvent(time=0.0, kind="cpu-drift", target=0)
        with pytest.raises(EventTraceError, match="factor"):
            PlatformEvent(time=0.0, kind="bw-drift", target=0, factor=-0.5)

    def test_factor_forbidden_off_drift(self):
        with pytest.raises(EventTraceError, match="factor"):
            PlatformEvent(time=0.0, kind="node-fail", target=0, factor=2.0)

    def test_arrive_needs_payoff_and_others_forbid_it(self):
        with pytest.raises(EventTraceError, match="payoff"):
            PlatformEvent(time=0.0, kind="app-arrive", target=0)
        with pytest.raises(EventTraceError, match="payoff"):
            PlatformEvent(time=0.0, kind="app-depart", target=0, payoff=1.0)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(EventTraceError, match="unknown event field"):
            PlatformEvent.from_dict(
                {"time": 0.0, "kind": "node-fail", "target": 0, "sev": 9}
            )


class TestEventTrace:
    def test_must_be_time_sorted(self):
        a = PlatformEvent(time=2.0, kind="node-fail", target=0)
        b = PlatformEvent(time=1.0, kind="node-recover", target=0)
        with pytest.raises(EventTraceError, match="sorted"):
            EventTrace(seed=0, events=(a, b))

    def test_rejects_non_events(self):
        with pytest.raises(EventTraceError, match="not a PlatformEvent"):
            EventTrace(seed=0, events=({"kind": "node-fail"},))

    def test_from_dict_rejects_wrong_kind_and_version(self):
        good = drift_trace(3, n_events=2, seed=0).to_dict()
        with pytest.raises(EventTraceError, match="not an event trace"):
            EventTrace.from_dict({**good, "kind": "platform"})
        with pytest.raises(EventTraceError, match="version"):
            EventTrace.from_dict({**good, "version": EVENT_TRACE_VERSION + 1})
        with pytest.raises(EventTraceError, match="unknown event trace field"):
            EventTrace.from_dict({**good, "comment": "hi"})

    @pytest.mark.parametrize("family", ["drift", "storm", "churn"])
    def test_json_round_trip_is_identity(self, family):
        trace = _families(seed=11)[family]
        wire = json.dumps(trace.to_dict())
        back = EventTrace.from_dict(json.loads(wire))
        assert back == trace

    def test_save_load_round_trip(self, tmp_path):
        trace = failure_storm_trace(4, LINKS, n_storms=3, seed=5)
        path = trace.save(tmp_path / "trace.json")
        assert EventTrace.load(path) == trace
        data = json.loads(path.read_text())
        assert data["kind"] == "event-trace"
        assert data["version"] == EVENT_TRACE_VERSION
        assert data["seed"] == 5

    def test_load_missing_and_malformed(self, tmp_path):
        with pytest.raises(EventTraceError, match="does not exist"):
            EventTrace.load(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(EventTraceError, match="not valid JSON"):
            EventTrace.load(bad)


class TestGenerators:
    @pytest.mark.parametrize("family", ["drift", "storm", "churn"])
    def test_seeded_determinism(self, family):
        assert _families(3)[family] == _families(3)[family]
        assert _families(3)[family] != _families(4)[family]

    def test_drift_events_are_pure_rhs_material(self):
        trace = drift_trace(6, n_events=20, seed=9)
        assert len(trace) == 20
        for event in trace:
            assert event.kind in ("cpu-drift", "bw-drift")
            assert 0.25 <= event.factor <= 4.0
            assert 0 <= int(event.target) < 6

    def test_storm_failures_strictly_pair_with_recoveries(self):
        trace = failure_storm_trace(6, LINKS, n_storms=8, seed=1)
        down: set = set()
        for event in trace:
            if event.kind in ("link-fail", "node-fail"):
                assert event.target not in down
                down.add(event.target)
            else:
                assert event.target in down
                down.discard(event.target)
        assert not down

    def test_churn_departs_before_rearriving(self):
        trace = churn_trace(5, n_cycles=6, seed=2)
        live = {k: True for k in range(5)}
        for event in trace:
            k = int(event.target)
            if event.kind == "app-depart":
                assert live[k]
                live[k] = False
            else:
                assert event.kind == "app-arrive"
                assert not live[k]
                assert event.payoff > 0
                live[k] = True

    def test_generator_argument_validation(self):
        with pytest.raises(EventTraceError):
            drift_trace(0)
        with pytest.raises(EventTraceError):
            drift_trace(3, n_events=-1)
        with pytest.raises(EventTraceError):
            failure_storm_trace(0, LINKS)
        with pytest.raises(EventTraceError):
            churn_trace(3, payoff_low=0.0)
