"""OnlineScheduler: event classification, incremental mutation paths,
structural rebuilds, the facade/CLI surface.

The layer contract under test: every event maps to exactly one of the
three LP-mutation classes (``rhs`` / ``bounds`` / ``structural``), the
live session absorbs it in place, and the answer after every event is
bitwise the from-scratch oracle's — warm-starting buys pivots, never a
float.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import (
    DynamicOptions,
    Solver,
    SolverConfig,
    SolverError,
    SteadyStateProblem,
)
from repro.dynamic import (
    EventTrace,
    EventTraceError,
    OnlineScheduler,
    PlatformEvent,
    drift_trace,
)
from repro.platform import line_platform

FAST = DynamicOptions(replay=False)


@pytest.fixture
def problem(line3):
    return SteadyStateProblem(line3, objective="maxmin")


def _scheduler(problem, **kwargs):
    kwargs.setdefault("options", FAST)
    return OnlineScheduler(problem, **kwargs)


def _ev(kind, target, **kw):
    time = kw.pop("time", 1.0)
    return PlatformEvent(time=time, kind=kind, target=target, **kw)


class TestClassification:
    def test_drift_is_rhs_only(self, problem):
        sched = _scheduler(problem)
        assert sched.step(_ev("cpu-drift", 0, factor=0.5)).classification == "rhs"
        assert sched.step(_ev("bw-drift", 1, factor=2.0)).classification == "rhs"

    def test_node_failure_is_rhs_only(self, problem):
        sched = _scheduler(problem)
        assert sched.step(_ev("node-fail", 2)).classification == "rhs"
        assert sched.failed_nodes == (2,)
        assert sched.step(_ev("node-recover", 2)).classification == "rhs"
        assert sched.failed_nodes == ()

    def test_link_failure_is_bounds_only(self, problem):
        sched = _scheduler(problem)
        assert sched.step(_ev("link-fail", "seg0")).classification == "bounds"
        assert sched.failed_links == ("seg0",)
        assert sched.step(_ev("link-recover", "seg0")).classification == "bounds"

    def test_churn_is_structural(self, problem):
        sched = _scheduler(problem)
        assert sched.step(_ev("app-depart", 1)).classification == "structural"
        record = sched.step(_ev("app-arrive", 1, payoff=1.5, time=2.0))
        assert record.classification == "structural"
        assert sched.payoffs[1] == 1.5

    def test_every_record_matches_oracle_bitwise(self, problem):
        sched = _scheduler(problem)
        for event in [
            _ev("cpu-drift", 0, factor=0.7),
            _ev("link-fail", "seg1"),
            _ev("app-depart", 2, time=2.0),
            _ev("link-recover", "seg1", time=3.0),
            _ev("app-arrive", 2, payoff=0.8, time=4.0),
        ]:
            record = sched.step(event)
            assert record.oracle_match is True
            assert record.value == record.oracle_value


class TestMutationPaths:
    def test_cpu_drift_moves_the_bound(self, problem):
        sched = _scheduler(problem)
        before = sched.value
        sched.step(_ev("cpu-drift", 0, factor=0.25))
        sched.step(_ev("cpu-drift", 1, factor=0.25))
        sched.step(_ev("cpu-drift", 2, factor=0.25))
        assert sched.value < before

    def test_drift_factors_compound(self, problem):
        sched = _scheduler(problem)
        sched.step(_ev("cpu-drift", 0, factor=0.5))
        sched.step(_ev("cpu-drift", 0, factor=0.5))
        assert sched.platform.speeds[0] == pytest.approx(25.0)

    def test_link_failure_pins_and_recovery_restores_bitwise(self, problem):
        sched = _scheduler(problem)
        initial = sched.value
        initial_sha = sched.initial_solution_sha
        record = sched.step(_ev("link-fail", "seg0"))
        assert len(sched._session.pinned_variables) > 0
        assert record.value <= initial
        # Every transfer routed through the dead link is pinned to zero.
        alloc = sched.allocation
        for (k, l) in problem.platform.routes_through("seg0"):
            assert alloc.alpha[k, l] == 0.0
        # Recovery restores the exact original instance: same floats.
        record = sched.step(_ev("link-recover", "seg0", time=2.0))
        assert sched._session.pinned_variables == ()
        assert record.value == initial
        assert record.solution_sha == initial_sha

    def test_node_failure_zeroes_and_recovery_restores_bitwise(self, problem):
        sched = _scheduler(problem)
        initial = sched.value
        initial_sha = sched.initial_solution_sha
        sched.step(_ev("node-fail", 0))
        assert sched.platform.speeds[0] == 0.0
        assert sched.value < initial
        record = sched.step(_ev("node-recover", 0, time=2.0))
        assert record.value == initial
        assert record.solution_sha == initial_sha

    def test_drift_on_failed_node_lands_after_recovery(self, problem):
        sched = _scheduler(problem)
        sched.step(_ev("node-fail", 0))
        sched.step(_ev("cpu-drift", 0, factor=0.5))
        assert sched.platform.speeds[0] == 0.0  # still down
        sched.step(_ev("node-recover", 0, time=2.0))
        assert sched.platform.speeds[0] == pytest.approx(50.0)

    def test_structural_rebuild_preserves_lifetime_stats(self, problem):
        sched = _scheduler(problem)
        sched.step(_ev("cpu-drift", 0, factor=0.9))
        before = sched.session_stats["iterations"]
        sched.step(_ev("app-depart", 1, time=2.0))
        assert sched.session_stats["iterations"] > before

    def test_overlapping_link_failures_refcount_pins(self, problem):
        sched = _scheduler(problem)
        sched.step(_ev("link-fail", "seg0"))
        sched.step(_ev("link-fail", "seg1"))
        both = set(sched._session.pinned_variables)
        sched.step(_ev("link-recover", "seg0", time=2.0))
        # (0, 2) and (2, 0) route through both segments: their pins must
        # survive seg0's recovery because seg1 is still down.
        remaining = set(sched._session.pinned_variables)
        assert remaining
        assert remaining < both
        sched.step(_ev("link-recover", "seg1", time=3.0))
        assert sched._session.pinned_variables == ()


class TestEventValidation:
    def test_strict_fail_recover_pairing(self, problem):
        sched = _scheduler(problem)
        sched.step(_ev("node-fail", 0))
        with pytest.raises(EventTraceError, match="already down"):
            sched.step(_ev("node-fail", 0))
        with pytest.raises(EventTraceError, match="not down"):
            sched.step(_ev("link-recover", "seg0"))

    def test_unknown_targets(self, problem):
        sched = _scheduler(problem)
        with pytest.raises(EventTraceError, match="unknown backbone link"):
            sched.step(_ev("link-fail", "seg9"))
        with pytest.raises(EventTraceError, match="clusters"):
            sched.step(_ev("cpu-drift", 7, factor=1.1))

    def test_strict_churn_pairing(self, problem):
        sched = _scheduler(problem)
        with pytest.raises(EventTraceError, match="already hosts"):
            sched.step(_ev("app-arrive", 0, payoff=1.0))
        sched.step(_ev("app-depart", 0))
        with pytest.raises(EventTraceError, match="no live application"):
            sched.step(_ev("app-depart", 0))

    def test_engine_and_options_validation(self, problem):
        with pytest.raises(SolverError, match="revised"):
            OnlineScheduler(problem, engine="tableau")
        with pytest.raises(SolverError, match="DynamicOptions"):
            OnlineScheduler(problem, options={"replay": False})


class TestRunAndReport:
    def test_run_aggregates_every_event(self, problem):
        trace = drift_trace(3, n_events=6, seed=4)
        report = _scheduler(problem).run(trace)
        assert len(report) == 6
        summary = report.summary()
        assert summary["n_events"] == 6
        assert summary["by_classification"]["rhs"] == 6
        assert summary["all_oracle_match"] is True
        assert summary["warm_iterations"] < summary["oracle_iterations"]
        assert report.trace == trace

    def test_state_dict_reproducible_across_fresh_schedulers(self, problem):
        trace = drift_trace(3, n_events=5, seed=8)
        first = _scheduler(problem).run(trace).state_dict()
        second = _scheduler(problem).run(trace).state_dict()
        assert first == second

    def test_warm_and_cold_modes_agree_exactly(self, problem):
        trace = drift_trace(3, n_events=5, seed=6)
        warm = _scheduler(problem, warm_start=True).run(trace)
        cold = _scheduler(problem, warm_start=False).run(trace)
        assert warm.state_dict() == cold.state_dict()
        assert (
            warm.summary()["warm_iterations"]
            < cold.summary()["warm_iterations"]
        )

    def test_replay_populates_simulated_values(self, problem):
        sched = _scheduler(
            problem, options=DynamicOptions(replay=True, sim_periods=2)
        )
        record = sched.step(_ev("cpu-drift", 0, factor=0.8))
        assert record.simulated_value is not None
        assert record.simulated_value >= 0.0

    def test_report_to_dict_is_json_ready(self, problem):
        report = _scheduler(problem).run(drift_trace(3, n_events=2, seed=0))
        wire = json.loads(json.dumps(report.to_dict()))
        assert wire["summary"]["n_events"] == 2
        assert EventTrace.from_dict(wire["trace"]) == report.trace


class TestFacadeAndCli:
    def test_run_online_by_names_is_reproducible(self):
        config = SolverConfig(dynamic=FAST)
        first = Solver(config).run_online("table1-small", "drift-heavy", rng=0)
        second = Solver(config).run_online("table1-small", "drift-heavy", rng=0)
        assert first.summary()["all_oracle_match"] is True
        assert first.state_dict() == second.state_dict()

    def test_run_online_accepts_explicit_trace(self, problem):
        trace = drift_trace(3, n_events=3, seed=1)
        report = Solver(SolverConfig(dynamic=FAST)).run_online(problem, trace)
        assert len(report) == 3
        with pytest.raises(SolverError):
            Solver(SolverConfig(dynamic=FAST)).run_online(
                problem, [("not", "a", "trace")]
            )

    def test_config_validates_and_round_trips_dynamic(self):
        options = DynamicOptions(replay=False, sim_periods=7)
        config = SolverConfig(dynamic=options)
        rebuilt = SolverConfig.from_dict(config.to_dict())
        assert rebuilt.dynamic == options
        with pytest.raises(SolverError, match="DynamicOptions"):
            SolverConfig(dynamic={"replay": False})

    def test_cli_online_smoke(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out_path = tmp_path / "report.json"
        code = main([
            "online", "--scenario", "table1-small", "--events", "drift-heavy",
            "--seed", "3", "--no-replay", "--json", str(out_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "all bitwise" in out
        data = json.loads(out_path.read_text())
        assert data["summary"]["all_oracle_match"] is True
        assert data["trace"]["kind"] == "event-trace"

    def test_cli_online_replays_saved_trace_file(self, tmp_path, capsys):
        trace = drift_trace(5, n_events=3, seed=2)
        path = trace.save(tmp_path / "trace.json")
        from repro.experiments.cli import main

        code = main([
            "online", "--scenario", "table1-small", "--events", str(path),
            "--no-replay",
        ])
        assert code == 0
        assert "all bitwise" in capsys.readouterr().out
