"""Deterministic fault injection (repro.util.faults).

The contract pinned here: whether a fault fires is a pure function of
``(plan seed, rule, identity, attempt)`` — never of wall-clock, pids,
process boundaries or iteration order — so a fault schedule is as
reproducible as the campaign it torments. Plus the schema strictness
(unknown fields refused, wrong-kind files refused) that keeps plans
safe to version and ship around.
"""

from __future__ import annotations

import json

import pytest

from repro.util.errors import SolverError
from repro.util.faults import (
    CRASH_EXIT_CODE,
    FAULT_PLAN_ENV,
    FaultError,
    FaultPlan,
    FaultRule,
    InjectedTaskError,
    TransientFaultError,
    corrupt_checkpoint_tail,
    is_transient_exception,
    summarize_rules,
)


class TestFaultRuleSchema:
    def test_scope_and_fault_kind_are_validated(self):
        with pytest.raises(FaultError, match="scope"):
            FaultRule(scope="cluster", fault="error", match="x")
        with pytest.raises(FaultError, match="unknown task fault"):
            FaultRule(scope="task", fault="kill", match="x")
        with pytest.raises(FaultError, match="unknown shard fault"):
            FaultRule(scope="shard", fault="error", match=0)

    def test_exactly_one_of_match_or_p(self):
        with pytest.raises(FaultError, match="exactly one"):
            FaultRule(scope="task", fault="error")
        with pytest.raises(FaultError, match="exactly one"):
            FaultRule(scope="task", fault="error", match="x", p=0.5)

    def test_numeric_field_ranges(self):
        with pytest.raises(FaultError, match="p must be"):
            FaultRule(scope="task", fault="error", p=0.0)
        with pytest.raises(FaultError, match="p must be"):
            FaultRule(scope="task", fault="error", p=1.5)
        with pytest.raises(FaultError, match="times"):
            FaultRule(scope="task", fault="error", match="x", times=0)
        with pytest.raises(FaultError, match="seconds"):
            FaultRule(scope="task", fault="delay", match="x", seconds=-1)
        with pytest.raises(FaultError, match="after_tasks"):
            FaultRule(scope="shard", fault="kill", match=0, after_tasks=-1)

    def test_corruption_flags_require_kill(self):
        with pytest.raises(FaultError, match="kill"):
            FaultRule(scope="task", fault="error", match="x", corrupt_tail=True)
        with pytest.raises(FaultError, match="kill"):
            FaultRule(scope="shard", fault="stall", match=0, drop_state=True)
        FaultRule(scope="shard", fault="kill", match=0, corrupt_tail=True,
                  drop_state=True)  # valid

    def test_round_trip_is_minimal_and_exact(self):
        rule = FaultRule(scope="shard", fault="kill", match=2, times=3,
                         after_tasks=1, corrupt_tail=True)
        clone = FaultRule.from_dict(rule.to_dict())
        assert clone == rule
        # defaults are omitted from the serialized form
        assert FaultRule(scope="task", fault="error", p=0.5).to_dict() == {
            "scope": "task", "fault": "error", "p": 0.5,
        }

    def test_unknown_rule_field_is_refused(self):
        with pytest.raises(FaultError, match="unknown fault rule field"):
            FaultRule.from_dict(
                {"scope": "task", "fault": "error", "match": "x", "pct": 1}
            )
        with pytest.raises(FaultError, match="must be an object"):
            FaultRule.from_dict(["task"])


class TestFaultPlanSchema:
    def test_plan_round_trips_through_disk(self, tmp_path):
        plan = FaultPlan(seed=11, rules=(
            FaultRule(scope="task", fault="error", p=0.25, times=2),
            FaultRule(scope="shard", fault="kill", match=1, after_tasks=2),
        ))
        path = plan.save(tmp_path / "plan.json")
        assert FaultPlan.load(path) == plan

    def test_wrong_kind_version_and_fields_are_refused(self, tmp_path):
        with pytest.raises(FaultError, match="not a fault plan"):
            FaultPlan.from_dict({"kind": "other"})
        with pytest.raises(FaultError, match="version"):
            FaultPlan.from_dict({"kind": "fault-plan", "version": 99})
        with pytest.raises(FaultError, match="unknown fault plan field"):
            FaultPlan.from_dict({
                "kind": "fault-plan", "version": 1, "extra": True,
            })
        bad = tmp_path / "bad.json"
        bad.write_text("{torn")
        with pytest.raises(FaultError, match="not valid JSON"):
            FaultPlan.load(bad)
        with pytest.raises(FaultError, match="does not exist"):
            FaultPlan.load(tmp_path / "nope.json")

    def test_rules_must_be_fault_rules(self):
        with pytest.raises(FaultError, match="not a FaultRule"):
            FaultPlan(rules=({"scope": "task"},))

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert FaultPlan.from_env() is None
        plan = FaultPlan(seed=3, rules=(
            FaultRule(scope="task", fault="error", match="0/0"),
        ))
        path = plan.save(tmp_path / "ambient.json")
        monkeypatch.setenv(FAULT_PLAN_ENV, str(path))
        assert FaultPlan.from_env() == plan


class TestDeterministicFiring:
    def test_match_rules_hit_exactly_their_identity(self):
        plan = FaultPlan(rules=(
            FaultRule(scope="task", fault="fatal", match="2/0"),
            FaultRule(scope="shard", fault="kill", match=3),
        ))
        assert [r.fault for r in plan.task_rules("2/0")] == ["fatal"]
        assert plan.task_rules("2/1") == []
        assert [r.fault for r in plan.shard_rules(3)] == ["kill"]
        assert plan.shard_rules(2) == []

    def test_times_bounds_attempts(self):
        plan = FaultPlan(rules=(
            FaultRule(scope="task", fault="error", match="a", times=2),
        ))
        assert plan.task_rules("a", attempt=1)
        assert plan.task_rules("a", attempt=2)
        assert plan.task_rules("a", attempt=3) == []

    def test_probabilistic_selection_is_identity_stable(self):
        """p-rules pick a fixed pseudo-random subset of identities —
        the same subset on every evaluation, in every process (seeded
        off sha256 of the identity, never the salted ``hash()``)."""
        plan = FaultPlan(seed=7, rules=(
            FaultRule(scope="task", fault="error", p=0.5),
        ))
        ids = [f"{i}/{j}" for i in range(40) for j in range(5)]
        first = {t for t in ids if plan.task_rules(t)}
        again = {t for t in ids if plan.task_rules(t)}
        reloaded = FaultPlan.from_dict(plan.to_dict())
        third = {t for t in ids if reloaded.task_rules(t)}
        assert first == again == third
        assert 0 < len(first) < len(ids)  # a real subset at p=0.5

    def test_selection_depends_on_seed_and_rule_position(self):
        ids = [str(i) for i in range(200)]
        pick = lambda plan: {t for t in ids if plan.task_rules(t)}  # noqa: E731
        rule = FaultRule(scope="task", fault="error", p=0.5)
        assert pick(FaultPlan(seed=1, rules=(rule,))) != pick(
            FaultPlan(seed=2, rules=(rule,))
        )
        # same seed, same rule, different position -> different draw
        delay = FaultRule(scope="task", fault="delay", match="never")
        shifted = FaultPlan(seed=1, rules=(delay, rule))
        assert pick(FaultPlan(seed=1, rules=(rule,))) != pick(shifted)


class TestApplication:
    def test_error_and_fatal_raise_their_classes(self):
        plan = FaultPlan(rules=(
            FaultRule(scope="task", fault="error", match="t"),
            FaultRule(scope="task", fault="fatal", match="f"),
        ))
        with pytest.raises(TransientFaultError, match="attempt 1"):
            plan.apply_task_faults("t")
        with pytest.raises(InjectedTaskError):
            plan.apply_task_faults("f")
        plan.apply_task_faults("untouched")  # no-op
        plan.apply_task_faults("t", attempt=2)  # times=1: healed

    def test_delay_rule_applies_without_raising(self):
        plan = FaultPlan(rules=(
            FaultRule(scope="task", fault="delay", match="d", seconds=0.0),
        ))
        plan.apply_task_faults("d")

    def test_classification(self):
        assert is_transient_exception(TransientFaultError("x"))
        assert is_transient_exception(OSError("io"))
        assert is_transient_exception(TimeoutError())
        assert not is_transient_exception(InjectedTaskError("x"))
        assert not is_transient_exception(ValueError("bug"))
        assert not is_transient_exception(SolverError("bug"))

    def test_crash_exit_code_is_distinctive(self):
        assert CRASH_EXIT_CODE not in (0, 1, 2)

    def test_corrupt_checkpoint_tail(self, tmp_path):
        path = tmp_path / "shard.ckpt"
        path.write_text(json.dumps({"kind": "record"}) + "\n")
        before = path.read_bytes()
        corrupt_checkpoint_tail(path)
        after = path.read_bytes()
        assert after.startswith(before) and len(after) > len(before)
        # the tail is a torn half-record, not valid JSON
        with pytest.raises(json.JSONDecodeError):
            json.loads(after[len(before):])
        corrupt_checkpoint_tail(tmp_path / "absent.ckpt")  # no-op

    def test_summarize_rules(self):
        assert summarize_rules([]) == "<no rules>"
        text = summarize_rules([
            FaultRule(scope="task", fault="error", p=0.5),
            FaultRule(scope="shard", fault="kill", match=1, times=2),
        ])
        assert "task:error(p=0.5" in text
        assert "shard:kill(match=1, times=2)" in text
