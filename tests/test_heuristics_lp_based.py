"""Tests for LPR, LPRG, LPRR and the bound comparators (Section 5.2)."""

import numpy as np
import pytest

from repro import SteadyStateProblem, solve, star_platform
from repro.heuristics.base import get_heuristic, registry
from repro.heuristics.lpr import _floor_snapped, round_down
from repro.lp.builder import build_lp
from repro.lp.scipy_backend import solve_lp_scipy


class TestRegistry:
    def test_all_methods_registered(self):
        names = set(registry())
        assert {"greedy", "lpr", "lprg", "lprr", "lprr-eq", "lp", "milp", "bnb"} <= names

    def test_aliases(self):
        assert get_heuristic("g").name == "greedy"
        assert get_heuristic("exact").name == "milp"
        assert get_heuristic("LP-BOUND").name == "lp"

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            get_heuristic("nope")


class TestFloorSnapped:
    def test_plain_floor(self):
        assert _floor_snapped(2.7) == 2

    def test_solver_noise_snaps_up(self):
        assert _floor_snapped(2.9999999) == 3

    def test_solver_noise_snaps_down(self):
        assert _floor_snapped(3.0000001) == 3

    def test_exact_integers(self):
        assert _floor_snapped(0.0) == 0 and _floor_snapped(5.0) == 5


class TestLPR:
    def test_rounding_never_increases(self, problem_factory):
        problem = problem_factory(seed=0, n_clusters=6)
        relaxed = solve_lp_scipy(build_lp(problem))
        alloc = round_down(problem, relaxed)
        assert np.all(alloc.alpha <= relaxed.alpha + 1e-9)
        assert np.all(alloc.beta <= np.floor(relaxed.beta + 1e-6) + 1e-9)

    def test_result_valid(self, problem_factory):
        for seed in range(4):
            problem = problem_factory(seed=seed, n_clusters=6)
            result = solve(problem, "lpr")
            assert problem.check(result.allocation).ok

    def test_bounded_by_relaxation(self, problem_factory):
        problem = problem_factory(seed=1, n_clusters=6)
        lpr = solve(problem, "lpr")
        lp = solve(problem, "lp")
        assert lpr.value <= lp.value + 1e-6
        assert lpr.meta["relaxation_value"] == pytest.approx(lp.value, rel=1e-9)

    def test_known_total_rounddown_failure(self):
        # Two zero-speed origins on the same router must share a single
        # max-connect-1 link to the only worker: the LP is FORCED to
        # beta = 0.5 for both (any optimal point needs beta >= 0.5 each),
        # so LPR floors both to zero - the Section-6.1 failure mode.
        from repro import Cluster, Platform, BackboneLink

        platform = Platform(
            clusters=[
                Cluster("A", 0.0, 10.0, "R0"),
                Cluster("B", 0.0, 10.0, "R0"),
                Cluster("W", 100.0, 100.0, "R1"),
            ],
            routers=["R0", "R1"],
            backbone_links=[BackboneLink("L", ("R0", "R1"), bw=10.0, max_connect=1)],
        )
        problem = SteadyStateProblem(platform, [1, 1, 0], objective="maxmin")
        lp = solve(problem, "lp")
        lpr = solve(problem, "lpr")
        assert lp.value == pytest.approx(5.0)
        assert lpr.value == pytest.approx(0.0)  # all betas rounded to 0
        # Bonus: here the TRUE optimum is 0 too - the LP bound is not
        # achievable by any integer solution (integrality gap).
        assert solve(problem, "milp").value == pytest.approx(0.0)


class TestLPRG:
    def test_dominates_lpr(self, problem_factory):
        for seed in range(5):
            problem = problem_factory(seed=seed, n_clusters=6)
            lpr = solve(problem, "lpr")
            lprg = solve(problem, "lprg")
            assert lprg.value >= lpr.value - 1e-9

    def test_repairs_the_lpr_failure(self):
        platform = star_platform(1, hub_speed=0.0, g=20.0, bw=40.0, max_connect=1)
        problem = SteadyStateProblem(platform, [1, 0], objective="maxmin")
        lprg = solve(problem, "lprg")
        # Greedy reclaims the connection: min(g_hub, bw, g_leaf, s) = 20.
        assert lprg.value == pytest.approx(20.0)

    def test_result_valid(self, problem_factory):
        for seed in range(5):
            problem = problem_factory(seed=seed, n_clusters=6)
            result = solve(problem, "lprg")
            report = problem.check(result.allocation)
            assert report.ok, report.violations

    def test_meta_records_stage_values(self, problem_factory):
        problem = problem_factory(seed=2, n_clusters=5)
        result = solve(problem, "lprg")
        assert result.meta["lpr_value"] <= result.value + 1e-9
        assert result.value <= result.meta["relaxation_value"] + 1e-6


class TestLPRR:
    def test_result_valid_and_bounded(self, problem_factory):
        for seed in range(3):
            problem = problem_factory(seed=seed, n_clusters=5)
            result = solve(problem, "lprr", rng=seed)
            assert problem.check(result.allocation).ok
            assert result.value <= solve(problem, "lp").value + 1e-6

    def test_lp_solve_count_is_routes_plus_one(self, problem_factory):
        problem = problem_factory(seed=4, n_clusters=5)
        inst = build_lp(problem)
        result = solve(problem, "lprr", rng=0)
        assert result.n_lp_solves == inst.index.n_beta + 1

    def test_eager_fixing_cuts_lp_count(self, problem_factory):
        problem = problem_factory(seed=4, n_clusters=5)
        lazy = solve(problem, "lprr", rng=0)
        eager = solve(problem, "lprr", rng=0, eager_integer_fixing=True)
        assert eager.n_lp_solves <= lazy.n_lp_solves
        assert problem.check(eager.allocation).ok

    def test_deterministic_given_seed(self, problem_factory):
        problem = problem_factory(seed=5, n_clusters=5)
        a = solve(problem, "lprr", rng=11)
        b = solve(problem, "lprr", rng=11)
        assert a.value == pytest.approx(b.value)

    def test_equal_probability_variant_valid(self, problem_factory):
        problem = problem_factory(seed=6, n_clusters=5)
        result = solve(problem, "lprr-eq", rng=0)
        assert problem.check(result.allocation).ok


class TestBounds:
    def test_lp_dominates_everything(self, problem_factory):
        for seed in range(3):
            for objective in ("maxmin", "sum"):
                problem = problem_factory(seed=seed, n_clusters=5, objective=objective)
                lp = solve(problem, "lp").value
                for method in ("greedy", "lpr", "lprg", "lprr", "milp"):
                    value = solve(problem, method, rng=0).value
                    assert value <= lp + 1e-5, (method, objective, seed)

    def test_milp_dominates_heuristics(self, problem_factory):
        for seed in range(3):
            problem = problem_factory(seed=seed, n_clusters=5)
            exact = solve(problem, "milp").value
            for method in ("greedy", "lpr", "lprg", "lprr"):
                value = solve(problem, method, rng=0).value
                assert value <= exact + 1e-5, (method, seed)

    def test_lp_bound_has_no_allocation_when_fractional(self):
        # The forced-fractional construction (betas pinned at 0.5).
        from repro import BackboneLink, Cluster, Platform

        platform = Platform(
            clusters=[
                Cluster("A", 0.0, 10.0, "R0"),
                Cluster("B", 0.0, 10.0, "R0"),
                Cluster("W", 100.0, 100.0, "R1"),
            ],
            routers=["R0", "R1"],
            backbone_links=[BackboneLink("L", ("R0", "R1"), bw=10.0, max_connect=1)],
        )
        problem = SteadyStateProblem(platform, [1, 1, 0], objective="maxmin")
        result = solve(problem, "lp")
        assert result.allocation is None  # betas = 0.5 are fractional

    def test_bnb_equals_milp(self, problem_factory):
        problem = problem_factory(seed=8, n_clusters=4)
        assert solve(problem, "bnb").value == pytest.approx(
            solve(problem, "milp").value, rel=1e-5, abs=1e-5
        )
