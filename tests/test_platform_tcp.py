"""Tests for the RTT-aware TCP bandwidth refinement (Section-7 item)."""

import numpy as np
import pytest

from repro import SteadyStateProblem, line_platform, solve
from repro.platform.tcp import TcpModel, apply_tcp_model
from repro.util.errors import PlatformError


class TestTcpModel:
    def test_validation(self):
        with pytest.raises(PlatformError):
            TcpModel(window=0.0)
        with pytest.raises(PlatformError):
            TcpModel(window=1.0, default_latency=-1.0)
        with pytest.raises(PlatformError):
            TcpModel(window=1.0, latencies={"x": -0.5})

    def test_rtt_sums_link_latencies(self):
        platform = line_platform(3, bw=10.0)
        model = TcpModel(window=100.0, latencies={"seg0": 1.0, "seg1": 2.0})
        route = platform.route(0, 2)
        assert model.rtt(route) == pytest.approx(6.0)  # 2 * (1 + 2)

    def test_window_limited_vs_capacity_limited(self):
        platform = line_platform(2, bw=10.0)
        route = platform.route(0, 1)
        # Short path: capacity-limited at bw = 10.
        short = TcpModel(window=100.0, default_latency=0.1)
        assert short.connection_bandwidth(route) == pytest.approx(10.0)
        # Long path: window-limited at 100 / (2 * 10) = 5 < 10.
        long = TcpModel(window=100.0, default_latency=10.0)
        assert long.connection_bandwidth(route) == pytest.approx(5.0)

    def test_zero_latency_keeps_paper_model(self):
        platform = line_platform(3, bw=10.0)
        model = TcpModel(window=1.0, default_latency=0.0)
        refined = apply_tcp_model(platform, model)
        for pair in platform.routed_pairs():
            assert refined.route(*pair).bandwidth == platform.route(*pair).bandwidth


class TestApplyTcpModel:
    def test_structure_preserved(self):
        platform = line_platform(4, bw=10.0)
        refined = apply_tcp_model(platform, TcpModel(window=40.0, default_latency=1.0))
        assert refined.routed_pairs() == platform.routed_pairs()
        assert set(refined.links) == set(platform.links)
        assert np.array_equal(refined.speeds, platform.speeds)

    def test_longer_routes_get_less_bandwidth(self):
        platform = line_platform(4, bw=10.0)
        refined = apply_tcp_model(platform, TcpModel(window=12.0, default_latency=1.0))
        # 1 hop: min(12/2, 10) = 6; 3 hops: min(12/6, 10) = 2.
        assert refined.route(0, 1).bandwidth == pytest.approx(6.0)
        assert refined.route(0, 3).bandwidth == pytest.approx(2.0)

    def test_refined_platform_is_schedulable(self):
        platform = apply_tcp_model(
            line_platform(4, bw=10.0, g=60.0),
            TcpModel(window=12.0, default_latency=1.0),
        )
        problem = SteadyStateProblem(platform, objective="maxmin")
        result = solve(problem, "lprg")
        assert problem.check(result.allocation).ok
        assert result.value > 0

    def test_latency_lowers_the_bound(self):
        base = line_platform(4, bw=10.0, g=30.0, max_connect=2)
        problem = SteadyStateProblem(base, [1, 0, 0, 1], objective="maxmin")
        lp_base = solve(problem, "lp").value
        refined = apply_tcp_model(base, TcpModel(window=6.0, default_latency=1.0))
        lp_refined = solve(
            SteadyStateProblem(refined, [1, 0, 0, 1], objective="maxmin"), "lp"
        ).value
        assert lp_refined <= lp_base + 1e-9

    def test_rankings_can_change_under_latency(self):
        # Latency awareness penalises multi-hop routes: schedulers that
        # relied on distant clusters lose value; the comparison stays
        # internally consistent (LP still dominates).
        base = line_platform(5, bw=20.0, g=100.0, max_connect=3)
        refined = apply_tcp_model(base, TcpModel(window=20.0, default_latency=1.0))
        for platform in (base, refined):
            problem = SteadyStateProblem(platform, objective="maxmin")
            lp = solve(problem, "lp").value
            lprg = solve(problem, "lprg").value
            assert lprg <= lp + 1e-6
