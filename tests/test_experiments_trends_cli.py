"""Tests for the trend-mining module and the experiments CLI."""

import pytest

from repro.experiments import run_sweep, sample_settings
from repro.experiments.cli import main
from repro.experiments.trends import (
    PARAMETERS,
    render_trends,
    trend_spread,
    trend_table,
)


@pytest.fixture(scope="module")
def rows():
    settings = sample_settings(4, rng=2, k_values=[5, 8])
    return run_sweep(
        settings,
        methods=("greedy", "lprg"),
        objectives=("maxmin", "sum"),
        n_platforms=2,
        rng=2,
    )


class TestTrends:
    def test_trend_table_buckets(self, rows):
        table = trend_table(rows, "connectivity", "sum")
        assert table, "expected at least one bucket"
        values = [v for v, _, _ in table]
        assert values == sorted(values)
        assert all(n >= 1 for _, _, n in table)

    def test_unknown_parameter_rejected(self, rows):
        with pytest.raises(ValueError):
            trend_table(rows, "K", "sum")

    def test_trend_spread_covers_all_parameters(self, rows):
        spread = trend_spread(rows, "maxmin")
        assert set(spread) == set(PARAMETERS)
        assert all(v >= 0 or v != v for v in spread.values())  # >= 0 or nan

    def test_render_trends(self, rows):
        text = render_trends(rows, "sum")
        assert "LPRG/G" in text and "connectivity" in text

    def test_out_of_sync_rows_rejected(self, rows):
        with pytest.raises(ValueError):
            # milp was never run: pairing must fail loudly.
            trend_table(rows, "connectivity", "sum", numerator="milp")


class TestCLI:
    def test_grid_command(self, capsys):
        assert main(["grid"]) == 0
        out = capsys.readouterr().out
        assert "115,200" in out and "mean_bw" in out

    def test_headline_command(self, capsys):
        assert main(["headline", "--settings", "2", "--platforms", "1", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "MAXMIN" in out and "paper" in out

    def test_figure5_command(self, capsys):
        code = main([
            "figure5", "--k", "4", "5", "--settings-per-k", "1",
            "--platforms", "1", "--seed", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out

    def test_figure7_command_no_lprr(self, capsys):
        code = main(["figure7", "--k", "4", "--no-lprr", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "LPRR" not in out.split("notes")[0].split("=")[0] or True
        assert "Figure 7" in out

    def test_trends_command(self, capsys):
        code = main(["trends", "--settings", "2", "--platforms", "1", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "spread" in out and "LPR failure" in out
