"""Tests for repro.platform.routing."""

import pytest

from repro.platform.links import BackboneLink
from repro.platform.routing import (
    Route,
    build_route,
    compute_routes,
    shortest_paths_from,
)
from repro.util.errors import RoutingError


def _links(*tuples):
    return {
        name: BackboneLink(name, ends, bw=bw, max_connect=mc)
        for name, ends, bw, mc in tuples
    }


class TestRoute:
    def test_length_and_reverse(self):
        r = Route(routers=("a", "b", "c"), links=("l1", "l2"), bandwidth=2.0, connection_cap=1)
        assert len(r) == 2
        rev = r.reversed()
        assert rev.routers == ("c", "b", "a")
        assert rev.links == ("l2", "l1")
        assert rev.bandwidth == 2.0

    def test_inconsistent_route_rejected(self):
        with pytest.raises(RoutingError):
            Route(routers=("a", "b"), links=(), bandwidth=1.0, connection_cap=0)


class TestShortestPaths:
    def test_line_graph(self):
        links = _links(
            ("l0", ("R0", "R1"), 5.0, 2),
            ("l1", ("R1", "R2"), 3.0, 2),
        )
        paths = shortest_paths_from("R0", ["R0", "R1", "R2"], links)
        assert paths["R2"] == (("R0", "R1", "R2"), ("l0", "l1"))

    def test_unreachable_absent(self):
        links = _links(("l0", ("R0", "R1"), 1.0, 1))
        paths = shortest_paths_from("R0", ["R0", "R1", "R2"], links)
        assert "R2" not in paths

    def test_unknown_source_rejected(self):
        with pytest.raises(RoutingError):
            shortest_paths_from("missing", ["R0"], {})

    def test_deterministic_tie_break(self):
        # Two equal-length paths R0-R1-R3 and R0-R2-R3: the predecessor
        # with the lexicographically smaller router name (R1) must win.
        links = _links(
            ("a", ("R0", "R1"), 1.0, 1),
            ("b", ("R0", "R2"), 1.0, 1),
            ("c", ("R1", "R3"), 1.0, 1),
            ("d", ("R2", "R3"), 1.0, 1),
        )
        paths = shortest_paths_from("R0", ["R0", "R1", "R2", "R3"], links)
        assert paths["R3"][0] == ("R0", "R1", "R3")

    def test_dangling_link_rejected(self):
        links = _links(("l0", ("R0", "Rx"), 1.0, 1))
        with pytest.raises(RoutingError):
            shortest_paths_from("R0", ["R0"], links)


class TestBuildRoute:
    def test_bottleneck_values(self):
        links = _links(
            ("l0", ("R0", "R1"), 5.0, 7),
            ("l1", ("R1", "R2"), 3.0, 9),
        )
        r = build_route(("R0", "R1", "R2"), ("l0", "l1"), links)
        assert r.bandwidth == 3.0  # min bw
        assert r.connection_cap == 7  # min max_connect

    def test_empty_route(self):
        r = build_route(("R0",), (), {})
        assert r.bandwidth == float("inf")
        assert len(r) == 0


class TestComputeRoutes:
    def test_full_table_on_line(self):
        links = _links(
            ("l0", ("R0", "R1"), 5.0, 2),
            ("l1", ("R1", "R2"), 3.0, 2),
        )
        routes = compute_routes(["R0", "R1", "R2"], ["R0", "R1", "R2"], links)
        assert set(routes) == {(k, l) for k in range(3) for l in range(3) if k != l}
        assert routes[(0, 2)].links == ("l0", "l1")
        assert routes[(2, 0)].links == ("l1", "l0")

    def test_disconnected_pairs_missing(self):
        links = _links(("l0", ("R0", "R1"), 1.0, 1))
        routes = compute_routes(["R0", "R1", "R2"], ["R0", "R1", "R2"], links)
        assert (0, 1) in routes and (0, 2) not in routes and (2, 1) not in routes

    def test_same_router_clusters(self):
        routes = compute_routes(["R0", "R0"], ["R0"], {})
        r = routes[(0, 1)]
        assert r.links == () and r.bandwidth == float("inf")

    def test_route_through_pass_through_router(self):
        # R1 hosts no cluster but carries the only path.
        links = _links(
            ("l0", ("R0", "R1"), 4.0, 3),
            ("l1", ("R1", "R2"), 6.0, 5),
        )
        routes = compute_routes(["R0", "R2"], ["R0", "R1", "R2"], links)
        assert routes[(0, 1)].routers == ("R0", "R1", "R2")
        assert routes[(0, 1)].bandwidth == 4.0
        assert routes[(0, 1)].connection_cap == 3
