"""End-to-end service tests through the in-process ASGI client.

The two headline contracts:

* ``POST /solve`` responses are bitwise the facade reference
  ``Solver(cfg).solve(build_scenario(name, obj, rng=default_rng(s)),
  rng=seed)`` — independent of pooling and coalescing;
* a held sweep job streamed over ``/jobs/{id}/stream`` delivers every
  row of the campaign in task-index order, and the client-side fold of
  those rows reproduces the server's aggregate (and the serial
  ``jobs=1`` reference) on every runtime-free table.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import Solver, SolverConfig, build_scenario
from repro.experiments.config import Setting
from repro.experiments.persistence import row_from_dict, row_to_dict
from repro.parallel.stream import SweepAccumulator
from repro.service import SolverService, create_app
from repro.service.testing import AsgiTestClient

SWEEP_SETTINGS = [
    {"K": 4, "connectivity": 0.5, "heterogeneity": 0.4,
     "mean_g": 250.0, "mean_bw": 30.0, "mean_maxcon": 10.0},
]
SWEEP_BODY = {
    "settings": SWEEP_SETTINGS,
    "scenario": "calibrated",
    "methods": ["greedy", "lprg"],
    "objectives": ["maxmin"],
    "n_platforms": 2,
    "seed": 7,
}


@pytest.fixture()
def client():
    app = create_app(max_workers=4, coalesce_window=0.002)
    yield AsgiTestClient(app)
    app.service.close()


def _tables_sans_runtime(tables: dict) -> str:
    out = dict(tables)
    out.pop("runtime_mean_by_k")
    return json.dumps(out, sort_keys=True)


def _drain_stream(client, job_id, start=False):
    handle = client.stream(f"/jobs/{job_id}/stream")
    events = handle.iter_events(timeout=120)
    name, data = next(events)
    assert name == "status"
    if start:
        started = client.post(f"/jobs/{job_id}/start")
        assert started.status == 200
    seen = [(name, data)]
    for name, data in events:
        seen.append((name, data))
        if name in ("done", "failed", "cancelled", "interrupted"):
            break
    return seen


# ----------------------------------------------------------------------
# discovery + basics
# ----------------------------------------------------------------------
def test_health_methods_scenarios(client):
    assert client.get("/healthz").json() == {"status": "ok"}
    assert "greedy" in client.get("/methods").json()["methods"]
    names = [s["name"] for s in client.get("/scenarios").json()["scenarios"]]
    assert "das2" in names and "calibrated" in names


def test_unknown_route_and_wrong_method(client):
    assert client.get("/nope").status == 404
    assert client.post("/healthz").status == 405


def test_invalid_json_body(client):
    response = client.request("POST", "/solve", json_body=None)
    assert response.status == 400  # missing scenario

    # raw broken bytes
    import asyncio

    scope = client._scope("POST", "/solve")
    received = {}

    async def run():
        messages = [
            {"type": "http.request", "body": b"{nope", "more_body": False}
        ]

        async def receive():
            return messages.pop(0) if messages else {"type": "http.disconnect"}

        async def send(message):
            if message["type"] == "http.response.start":
                received["status"] = message["status"]

        await client.app(scope, receive, send)

    asyncio.run(run())
    assert received["status"] == 400


# ----------------------------------------------------------------------
# solve
# ----------------------------------------------------------------------
def test_solve_matches_facade_reference_bitwise(client):
    body = {"scenario": "das2", "seed": 5, "scenario_seed": 9,
            "config": {"method": "greedy"}}
    report = client.post("/solve", body).json()["report"]

    problem = build_scenario("das2", "maxmin", rng=np.random.default_rng(9))
    reference = Solver(SolverConfig(method="greedy")).solve(problem, rng=5)
    assert report["value"] == reference.value
    assert report["n_lp_solves"] == reference.n_lp_solves
    assert np.array_equal(
        np.asarray(report["allocation"]["alpha"]), reference.allocation.alpha
    )
    assert np.array_equal(
        np.asarray(report["allocation"]["beta"]), reference.allocation.beta
    )
    assert report["config"]["method"] == "greedy"


def test_solve_is_deterministic_across_requests(client):
    body = {"scenario": "table1-small", "seed": 3, "scenario_seed": 3,
            "config": {"method": "greedy"}}
    first = client.post("/solve", body).json()["report"]
    second = client.post("/solve", body).json()["report"]
    assert first["value"] == second["value"]
    assert first["allocation"] == second["allocation"]


def test_solve_warms_the_pool(client):
    body = {"scenario": "das2", "seed": 1, "config": {"method": "greedy"}}
    client.post("/solve", body)
    client.post("/solve", body)
    pool = client.get("/stats").json()["pool"]
    assert pool["pool_misses"] == 1
    assert pool["pool_hits"] >= 1
    assert pool["solver_totals"]["n_solves"] == 2  # one warm solver did both


def test_solve_validation_errors(client):
    assert client.post("/solve", {}).status == 400
    assert client.post("/solve", {"scenario": "not-a-scenario"}).status == 400
    assert (
        client.post(
            "/solve", {"scenario": "das2", "config": {"shards": 2}}
        ).status
        == 400
    )
    assert (
        client.post("/solve", {"scenario": "calibrated"}).status == 400
    )  # sweep scenario on the solve endpoint


def test_async_solve_job(client):
    body = {"scenario": "das2", "seed": 2, "config": {"method": "greedy"},
            "async": True}
    response = client.post("/solve", body)
    assert response.status == 202
    job_id = response.json()["job"]["job_id"]
    events = _drain_stream(client, job_id)
    assert events[-1][0] == "done"
    result = client.get(f"/jobs/{job_id}/result").json()["result"]
    reference = client.post(
        "/solve", {**body, "async": False}
    ).json()["report"]
    assert result["report"]["value"] == reference["value"]
    assert result["report"]["allocation"] == reference["allocation"]


# ----------------------------------------------------------------------
# sweep jobs
# ----------------------------------------------------------------------
def test_sweep_job_runs_to_done_with_progress(client):
    job = client.post("/sweep", SWEEP_BODY).json()["job"]
    events = _drain_stream(client, job["job_id"])
    assert events[-1][0] == "done"
    status = client.get(f"/jobs/{job['job_id']}/status").json()
    assert status["status"] == "done"
    assert status["progress"] == {"done": 2, "total": 2}
    listed = client.get("/jobs").json()["jobs"]
    assert any(j["job_id"] == job["job_id"] for j in listed)


def test_sweep_result_gated_until_done(client):
    job = client.post(
        "/sweep", {**SWEEP_BODY, "hold": True}
    ).json()["job"]
    assert job["status"] == "held"
    assert client.get(f"/jobs/{job['job_id']}/result").status == 409
    _drain_stream(client, job["job_id"], start=True)
    assert client.get(f"/jobs/{job['job_id']}/result").status == 200


def test_held_stream_delivers_every_row_matching_serial_reference(client):
    """The guaranteed-complete recipe + the bitwise fold contract."""
    job = client.post("/sweep", {**SWEEP_BODY, "hold": True}).json()["job"]
    events = _drain_stream(client, job["job_id"], start=True)
    assert events[-1][0] == "done"
    streamed = [
        row
        for name, data in events
        if name == "rows"
        for row in data["rows"]
    ]

    settings = [
        Setting(
            k=int(s["K"]), connectivity=s["connectivity"],
            heterogeneity=s["heterogeneity"], mean_g=s["mean_g"],
            mean_bw=s["mean_bw"], mean_maxcon=s["mean_maxcon"],
        )
        for s in SWEEP_SETTINGS
    ]
    reference = Solver(SolverConfig(method="lprg")).sweep(
        settings,
        scenario="calibrated",
        methods=SWEEP_BODY["methods"],
        objectives=SWEEP_BODY["objectives"],
        n_platforms=SWEEP_BODY["n_platforms"],
        rng=SWEEP_BODY["seed"],
    )
    assert len(streamed) == len(reference)
    for streamed_row, reference_row in zip(streamed, reference):
        expected = row_to_dict(reference_row)
        for key, value in expected.items():
            if key == "runtime":
                continue  # wall clocks are not deterministic
            assert streamed_row[key] == value

    # client-side fold of the streamed rows == the server's aggregate
    folded = SweepAccumulator.from_rows(
        [row_from_dict(r) for r in streamed],
        methods=SWEEP_BODY["methods"],
        objectives=SWEEP_BODY["objectives"],
    )
    server_tables = client.get(
        f"/jobs/{job['job_id']}/result"
    ).json()["result"]["tables"]
    assert _tables_sans_runtime(folded.tables()) == _tables_sans_runtime(
        server_tables
    )


def test_sweep_sampled_settings_and_ndjson_stream(client):
    job = client.post(
        "/sweep",
        {"n_settings": 2, "k_values": [4], "settings_seed": 1, "seed": 11,
         "methods": ["greedy"], "objectives": ["maxmin"], "n_platforms": 1,
         "hold": True},
    ).json()["job"]
    handle = client.stream(f"/jobs/{job['job_id']}/stream?format=ndjson")
    events = handle.iter_ndjson(timeout=120)
    first = next(events)
    assert first["event"] == "status"
    client.post(f"/jobs/{job['job_id']}/start")
    names = [first["event"]]
    rows = 0
    for event in events:
        names.append(event["event"])
        rows += len(event.get("rows", []))
        if event["event"] in ("done", "failed"):
            break
    assert names[-1] == "done"
    assert rows == 2 * 2  # 2 tasks x (lp bound + greedy)


def test_stream_of_finished_job_emits_synthetic_terminal(client):
    job = client.post("/sweep", SWEEP_BODY).json()["job"]
    _drain_stream(client, job["job_id"])  # run to completion
    events = _drain_stream(client, job["job_id"])  # re-stream afterwards
    assert events[0][1]["status"] == "done"
    assert events[-1][0] == "done"


def test_sweep_validation_errors(client):
    assert client.post("/sweep", {}).status == 400
    assert client.post("/sweep", {"settings": []}).status == 400
    assert (
        client.post(
            "/sweep", {**SWEEP_BODY, "config": {"shards": 2}}
        ).status
        == 400
    )
    assert (
        client.post("/sweep", {**SWEEP_BODY, "scenario": "das2"}).status
        == 400
    )  # platform scenario on the sweep endpoint
    bad_setting = client.post(
        "/sweep", {**SWEEP_BODY, "settings": [{"K": 4}]}
    )
    assert bad_setting.status == 400


def test_start_rejects_non_held_jobs(client):
    job = client.post("/sweep", SWEEP_BODY).json()["job"]
    _drain_stream(client, job["job_id"])
    assert client.post(f"/jobs/{job['job_id']}/start").status == 409


def test_job_endpoints_404(client):
    assert client.get("/jobs/nope/status").status == 404
    assert client.get("/jobs/nope/result").status == 404
    assert client.post("/jobs/nope/start").status == 404
    assert client.post("/jobs/nope/restart").status == 404
    assert client.stream("/jobs/nope/stream").status == 404


def test_restart_rejects_non_terminal_jobs(client):
    job = client.post("/sweep", {**SWEEP_BODY, "hold": True}).json()["job"]
    response = client.post(f"/jobs/{job['job_id']}/restart")
    assert response.status == 409  # held: still owned by a live worker


def test_restart_terminal_job_resubmits_as_new_job(client):
    job = client.post("/sweep", SWEEP_BODY).json()["job"]
    _drain_stream(client, job["job_id"])
    response = client.post(f"/jobs/{job['job_id']}/restart")
    assert response.status == 202
    new = response.json()["job"]
    assert new["job_id"] != job["job_id"]
    assert new["restarted_from"] == job["job_id"]
    events = _drain_stream(client, new["job_id"])
    assert events[-1][0] == "done"
    # Same journaled request, same seed: runtime-free tables are bitwise.
    first = client.get(f"/jobs/{job['job_id']}/result").json()["result"]
    second = client.get(f"/jobs/{new['job_id']}/result").json()["result"]
    assert _tables_sans_runtime(first["tables"]) == _tables_sans_runtime(
        second["tables"]
    )


def test_restart_recovers_interrupted_job_after_journal_replay(tmp_path):
    from repro.service.jobstore import JobRecord

    journal = tmp_path / "jobs.jsonl"
    # A journal whose last line shows the job mid-flight: the process
    # died before any terminal transition was appended.
    record = JobRecord(
        "sweep-000007", kind="sweep", status="running", request=SWEEP_BODY
    )
    journal.write_text(json.dumps(record.to_dict()) + "\n", encoding="utf-8")

    app = create_app(job_store=str(journal), max_workers=2)
    client = AsgiTestClient(app)
    try:
        status = client.get("/jobs/sweep-000007/status").json()
        assert status["status"] == "interrupted"
        # Interrupted jobs never resume implicitly...
        assert client.get("/jobs/sweep-000007/result").status == 409
        # ...recovery is the explicit restart, from the journaled request.
        new = client.post("/jobs/sweep-000007/restart").json()["job"]
        assert new["restarted_from"] == "sweep-000007"
        assert new["job_id"] != "sweep-000007"
        events = _drain_stream(client, new["job_id"])
        assert events[-1][0] == "done"
        result = client.get(f"/jobs/{new['job_id']}/result").json()["result"]
        assert "tables" in result
    finally:
        app.service.close()


def test_failed_sweep_reports_failure(client, tmp_path):
    blocker = tmp_path / "blocker"
    blocker.write_text("")  # a file where a directory would be needed
    job = client.post(
        "/sweep",
        {**SWEEP_BODY, "methods": ["greedy"], "objectives": ["maxmin"],
         "config": {"row_sink": str(blocker / "rows.jsonl")}},
    ).json()["job"]
    events = _drain_stream(client, job["job_id"])
    assert events[-1][0] == "failed"
    status = client.get(f"/jobs/{job['job_id']}/status").json()
    assert status["status"] == "failed"
    assert status["error"]
    assert client.get(f"/jobs/{job['job_id']}/result").status == 409


# ----------------------------------------------------------------------
# persistence integration
# ----------------------------------------------------------------------
def test_jsonl_job_store_survives_service_restart(tmp_path):
    journal = tmp_path / "jobs.jsonl"
    app = create_app(job_store=str(journal), max_workers=2)
    client = AsgiTestClient(app)
    job = client.post("/sweep", SWEEP_BODY).json()["job"]
    events = _drain_stream(client, job["job_id"])
    assert events[-1][0] == "done"
    app.service.close()

    app2 = create_app(job_store=str(journal), max_workers=2)
    client2 = AsgiTestClient(app2)
    status = client2.get(f"/jobs/{job['job_id']}/status").json()
    assert status["status"] == "done"
    result = client2.get(f"/jobs/{job['job_id']}/result").json()["result"]
    assert "tables" in result
    # new jobs continue the id sequence instead of colliding
    job2 = client2.post("/sweep", {**SWEEP_BODY, "hold": True}).json()["job"]
    assert job2["job_id"] != job["job_id"]
    app2.service.close()


def test_service_close_is_idempotent_and_rejects_new_work():
    service = SolverService(max_workers=1)
    service.close()
    service.close()
    client = AsgiTestClient(create_app(service))
    assert client.post("/solve", {"scenario": "das2"}).status == 503
