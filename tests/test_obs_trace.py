"""Structured tracing: span trees, the ambient tracer, JSONL sinks."""

import json
import threading

import pytest

from repro.obs.trace import (
    NOOP_TRACER,
    JsonlTraceSink,
    NullTracer,
    Tracer,
    current_tracer,
    use_tracer,
)


class TestSpans:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("solve", method="lprr"):
            with tracer.span("lp_build") as build:
                build.set(cache_hit=False)
            with tracer.span("session_resolve", warm=True):
                pass
        (root,) = tracer.to_dicts()
        assert root["name"] == "solve"
        assert root["attrs"] == {"method": "lprr"}
        assert [c["name"] for c in root["children"]] == [
            "lp_build", "session_resolve",
        ]
        assert root["children"][0]["attrs"] == {"cache_hit": False}

    def test_durations_are_monotonic_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        (root,) = tracer.to_dicts()
        inner = root["children"][0]
        assert root["duration_seconds"] >= inner["duration_seconds"] >= 0.0

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("solve"):
                raise ValueError("boom")
        (root,) = tracer.to_dicts()
        assert root["attrs"]["error"] == "ValueError"

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [t["name"] for t in tracer.to_dicts()] == ["a", "b"]

    def test_drain_clears_finished_trees(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert [t["name"] for t in tracer.drain()] == ["a"]
        assert tracer.drain() == []

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(name):
            barrier.wait()
            with tracer.span(name):
                barrier.wait()  # both spans open concurrently

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = tracer.to_dicts()
        # concurrent spans in different threads are siblings, not nested
        assert sorted(t["name"] for t in roots) == ["t0", "t1"]
        assert all("children" not in t for t in roots)


class TestAmbientTracer:
    def test_default_is_the_shared_noop(self):
        assert current_tracer() is NOOP_TRACER
        assert not NOOP_TRACER.enabled

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NOOP_TRACER

    def test_outer_tracer_wins(self):
        outer, inner = Tracer(), Tracer()
        with use_tracer(outer):
            with use_tracer(inner):
                with current_tracer().span("work"):
                    pass
        assert [t["name"] for t in outer.to_dicts()] == ["work"]
        assert inner.to_dicts() == []

    def test_noop_span_is_freely_usable(self):
        tracer = NullTracer()
        with tracer.span("anything", k=1) as span:
            span.set(more=2)
        assert tracer.to_dicts() == []


class TestJsonlSink:
    def test_write_round_trips_via_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("solve", seed=3):
            with tracer.span("lp_build"):
                pass
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path)
        sink.write(tracer)
        (line,) = path.read_text().splitlines()
        tree = json.loads(line)
        assert tree["name"] == "solve"
        assert tree["children"][0]["name"] == "lp_build"
        # write() drained the tracer: a second write appends nothing
        sink.write(tracer)
        assert len(path.read_text().splitlines()) == 1

    def test_appends_one_line_per_tree(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path)
        for name in ("a", "b"):
            tracer = Tracer()
            with tracer.span(name):
                pass
            sink.write(tracer)
        names = [json.loads(l)["name"] for l in path.read_text().splitlines()]
        assert names == ["a", "b"]
