"""Tests for the NP-completeness machinery (Section 4)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import solve, validate_allocation
from repro.complexity import (
    allocation_from_independent_set,
    exact_max_independent_set,
    greedy_independent_set,
    independent_set_from_allocation,
    is_independent_set,
    reduce_mis_to_scheduling,
    verify_lemma1,
)
from repro.complexity.independent_set import random_graph_edges

from tests.strategies import small_graphs


class TestIndependentSetSolvers:
    def test_triangle(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        assert len(exact_max_independent_set(3, edges)) == 1

    def test_path_graph(self):
        # P4: 0-1-2-3 -> MIS {0, 2} or {1, 3} or {0, 3}, size 2.
        assert len(exact_max_independent_set(4, [(0, 1), (1, 2), (2, 3)])) == 2

    def test_empty_graph(self):
        assert exact_max_independent_set(5, []) == {0, 1, 2, 3, 4}

    def test_is_independent_set(self):
        edges = [(0, 1)]
        assert is_independent_set(3, edges, {0, 2})
        assert not is_independent_set(3, edges, {0, 1})
        assert not is_independent_set(3, edges, {5})

    def test_greedy_is_valid_and_maximal(self):
        rng = np.random.default_rng(1)
        for _ in range(5):
            n = int(rng.integers(2, 9))
            edges = random_graph_edges(n, 0.4, rng)
            greedy = greedy_independent_set(n, edges)
            assert is_independent_set(n, edges, greedy)
            exact = exact_max_independent_set(n, edges)
            assert len(greedy) <= len(exact)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            exact_max_independent_set(2, [(0, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            exact_max_independent_set(2, [(0, 5)])


class TestReductionConstruction:
    def test_cluster_parameters_match_paper(self):
        inst = reduce_mis_to_scheduling(3, [(0, 1)], bound=2)
        platform = inst.platform
        assert platform.clusters[0].speed == 0.0
        assert platform.clusters[0].g == 3.0  # g_0 = n
        for i in range(1, 4):
            assert platform.clusters[i].speed == 1.0
            assert platform.clusters[i].g == 1.0
        assert inst.payoffs.tolist() == [1.0, 0.0, 0.0, 0.0]

    def test_all_links_unit(self):
        inst = reduce_mis_to_scheduling(4, [(0, 1), (2, 3), (1, 2)], bound=1)
        for link in inst.platform.links.values():
            assert link.bw == 1.0 and link.max_connect == 1

    def test_route_follows_equation8(self):
        # Vertex 1 is in edges 0=(0,1) and 1=(1,2): its route chains
        # through lcommon0 then lcommon1.
        inst = reduce_mis_to_scheduling(3, [(0, 1), (1, 2)], bound=1)
        route = inst.platform.route(0, 2)  # cluster of vertex 1
        common = [name for name in route.links if name.startswith("lcommon")]
        assert common == ["lcommon0", "lcommon1"]

    def test_isolated_vertex_direct_link(self):
        inst = reduce_mis_to_scheduling(2, [], bound=2)
        assert len(inst.platform.route(0, 1)) == 1
        assert len(inst.platform.route(0, 2)) == 1

    @given(small_graphs(max_vertices=6))
    @settings(max_examples=20)
    def test_lemma1_holds(self, graph):
        n, edges = graph
        inst = reduce_mis_to_scheduling(n, edges, bound=1)
        assert verify_lemma1(inst)


class TestSolutionMappings:
    def test_forward_mapping_valid(self):
        edges = [(0, 1), (1, 2)]
        inst = reduce_mis_to_scheduling(3, edges, bound=2)
        alloc = allocation_from_independent_set(inst, {0, 2})
        validate_allocation(inst.platform, alloc)
        assert alloc.maxmin_value(inst.payoffs) == pytest.approx(2.0)

    def test_forward_mapping_rejects_dependent_set(self):
        inst = reduce_mis_to_scheduling(3, [(0, 1)], bound=2)
        with pytest.raises(ValueError):
            allocation_from_independent_set(inst, {0, 1})

    def test_backward_mapping(self):
        edges = [(0, 1)]
        inst = reduce_mis_to_scheduling(2, edges, bound=1)
        alloc = allocation_from_independent_set(inst, {1})
        assert independent_set_from_allocation(inst, alloc) == {1}

    @given(small_graphs(max_vertices=5))
    @settings(max_examples=15)
    def test_milp_equals_mis(self, graph):
        """The headline equivalence: exact scheduling optimum == MIS size."""
        n, edges = graph
        inst = reduce_mis_to_scheduling(n, edges, bound=1)
        mis = exact_max_independent_set(n, edges)
        result = solve(inst.problem(), "milp")
        assert result.value == pytest.approx(len(mis), abs=1e-6)
        back = independent_set_from_allocation(inst, result.allocation)
        assert is_independent_set(n, edges, back)
        assert len(back) == len(mis)

    def test_greedy_heuristic_yields_independent_set(self):
        rng = np.random.default_rng(2)
        for _ in range(3):
            n = int(rng.integers(3, 7))
            edges = random_graph_edges(n, 0.5, rng)
            inst = reduce_mis_to_scheduling(n, edges, bound=1)
            result = solve(inst.problem(), "greedy")
            back = independent_set_from_allocation(inst, result.allocation)
            assert is_independent_set(n, edges, back)
