"""Job store lifecycle, journaling and crash-recovery semantics."""

from __future__ import annotations

import json
import threading

import pytest

from repro.service import (
    JobNotFound,
    JobRecord,
    JsonlJobStore,
    MemoryJobStore,
    ServiceError,
    open_job_store,
)


def test_memory_store_lifecycle():
    store = MemoryJobStore()
    store.create(JobRecord("sweep-000001", kind="sweep"))
    record = store.get("sweep-000001")
    assert record.status == "queued"
    assert record.created_at > 0
    updated = store.update("sweep-000001", status="running")
    assert updated.status == "running"
    assert store.get("sweep-000001").status == "running"
    assert updated.updated_at >= updated.created_at


def test_memory_store_unknown_and_duplicate():
    store = MemoryJobStore()
    with pytest.raises(JobNotFound):
        store.get("nope")
    store.create(JobRecord("a-1", kind="solve"))
    with pytest.raises(ServiceError):
        store.create(JobRecord("a-1", kind="solve"))


def test_record_rejects_unknown_status():
    with pytest.raises(ServiceError):
        JobRecord("x", kind="solve", status="sideways")


def test_status_dict_hides_result():
    record = JobRecord("x", kind="solve", status="done", result={"big": 1})
    assert "result" not in record.status_dict()
    assert record.to_dict()["result"] == {"big": 1}


def test_list_jobs_ordered_by_creation():
    store = MemoryJobStore()
    for i in range(5):
        store.create(JobRecord(f"job-{i}", kind="solve"))
    assert [r.job_id for r in store.list_jobs()] == [
        f"job-{i}" for i in range(5)
    ]


def test_jsonl_store_journals_every_transition(tmp_path):
    path = tmp_path / "jobs.jsonl"
    store = JsonlJobStore(path)
    store.create(JobRecord("sweep-000001", kind="sweep"))
    store.update("sweep-000001", status="running")
    store.update("sweep-000001", status="done", result={"ok": True})
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    assert [l["status"] for l in lines] == ["queued", "running", "done"]


def test_jsonl_store_replays_last_record_wins(tmp_path):
    path = tmp_path / "jobs.jsonl"
    store = JsonlJobStore(path)
    store.create(JobRecord("a-1", kind="solve"))
    store.update("a-1", status="done", result={"value": 3})
    store.create(JobRecord("a-2", kind="sweep"))
    store.update("a-2", status="failed", error="boom")
    del store  # no close: simulate an unclean exit (journal is flushed)

    reloaded = JsonlJobStore(path)
    assert reloaded.get("a-1").status == "done"
    assert reloaded.get("a-1").result == {"value": 3}
    assert reloaded.get("a-2").status == "failed"
    assert reloaded.get("a-2").error == "boom"


def test_jsonl_store_marks_pending_jobs_interrupted_on_load(tmp_path):
    path = tmp_path / "jobs.jsonl"
    store = JsonlJobStore(path)
    store.create(JobRecord("a-1", kind="sweep"))
    store.update("a-1", status="running")
    store.create(JobRecord("a-2", kind="sweep", status="held"))

    reloaded = JsonlJobStore(path)
    assert reloaded.get("a-1").status == "interrupted"
    assert reloaded.get("a-1").is_terminal
    assert reloaded.get("a-2").status == "interrupted"


def test_jsonl_compaction_is_atomic_and_lossless(tmp_path):
    path = tmp_path / "jobs.jsonl"
    store = JsonlJobStore(path)
    for i in range(4):
        store.create(JobRecord(f"job-{i}", kind="solve"))
        store.update(f"job-{i}", status="done", result={"i": i})
    assert len(path.read_text().splitlines()) == 8
    store.compact()
    lines = path.read_text().splitlines()
    assert len(lines) == 4  # one line per live job
    assert not (tmp_path / "jobs.jsonl.tmp").exists()
    # the journal still appends after compaction
    store.update("job-0", status="done", result={"i": 100})
    reloaded = JsonlJobStore(path)
    assert reloaded.get("job-0").result == {"i": 100}
    assert len(reloaded.list_jobs()) == 4


def test_close_compacts(tmp_path):
    path = tmp_path / "jobs.jsonl"
    store = JsonlJobStore(path)
    store.create(JobRecord("a-1", kind="solve"))
    store.update("a-1", status="done", result={})
    store.close()
    assert len(path.read_text().splitlines()) == 1


def test_open_job_store_dispatch(tmp_path):
    assert isinstance(open_job_store(None), MemoryJobStore)
    assert isinstance(open_job_store(tmp_path / "j.jsonl"), JsonlJobStore)


def test_concurrent_updates_do_not_tear(tmp_path):
    store = JsonlJobStore(tmp_path / "jobs.jsonl")
    store.create(JobRecord("a-1", kind="sweep", progress={"done": 0}))

    def bump(i):
        store.update("a-1", progress={"done": i})

    threads = [
        threading.Thread(target=bump, args=(i,)) for i in range(32)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # every journal line is valid JSON (no interleaved writes)
    lines = (tmp_path / "jobs.jsonl").read_text().splitlines()
    assert len(lines) == 33
    for line in lines:
        json.loads(line)
