"""End-to-end integration tests across all subsystems."""

import json

import numpy as np
import pytest

from repro import (
    SteadyStateProblem,
    generate_platform,
    load_platform,
    save_platform,
    solve,
)
from repro.platform.generator import PlatformSpec
from repro.platform.presets import get_preset
from repro.platform.tcp import TcpModel, apply_tcp_model
from repro.schedule import build_periodic_schedule
from repro.simulation import FlowSimulator, TraceRecorder
from repro.simulation.metrics import summarize


class TestFullPipeline:
    """platform -> problem -> heuristic -> schedule -> simulation."""

    @pytest.mark.parametrize("preset", ["das2", "intercontinental"])
    def test_preset_to_simulation(self, preset):
        platform = get_preset(preset)
        K = platform.n_clusters
        payoffs = [1.0] * K
        problem = SteadyStateProblem(platform, payoffs, objective="maxmin")

        result = solve(problem, "lprg")
        schedule = build_periodic_schedule(platform, result.allocation, denominator=200)
        trace = TraceRecorder()
        sim = FlowSimulator(platform, rate_policy="reserved", trace=trace)
        out = sim.run(schedule, n_periods=6)

        stats = summarize(out, schedule.throughputs)
        assert stats["min_ratio"] >= 1.0 - 1e-9
        assert stats["late_flows"] == 0
        # Trace agrees with the result.
        assert sum(trace.compute_units.values()) == pytest.approx(
            float(out.completed.sum())
        )

    def test_serialized_platform_solves_identically(self, tmp_path):
        spec = PlatformSpec(
            n_clusters=6, connectivity=0.6, heterogeneity=0.5,
            mean_g=200.0, mean_bw=30.0, mean_max_connect=8.0,
            speed_heterogeneity=0.5,
        )
        platform = generate_platform(spec, rng=3)
        path = tmp_path / "p.json"
        save_platform(platform, path)
        clone = load_platform(path)

        payoffs = np.linspace(0.8, 1.2, 6)
        for objective in ("maxmin", "sum"):
            a = solve(SteadyStateProblem(platform, payoffs, objective), "lprg").value
            b = solve(SteadyStateProblem(clone, payoffs, objective), "lprg").value
            assert a == pytest.approx(b, rel=1e-9)

    def test_tcp_refined_pipeline(self):
        platform = apply_tcp_model(
            get_preset("intercontinental"),
            TcpModel(window=30.0, default_latency=2.0),
        )
        problem = SteadyStateProblem(platform, objective="maxmin")
        result = solve(problem, "lprg")
        schedule = build_periodic_schedule(platform, result.allocation, denominator=100)
        out = FlowSimulator(platform, rate_policy="reserved").run(schedule, n_periods=4)
        assert out.late_flows == 0

    def test_objectives_consistent_across_methods(self, problem_factory):
        """The same allocation must score identically however obtained."""
        problem = problem_factory(seed=4, n_clusters=5)
        for method in ("greedy", "lpr", "lprg"):
            result = solve(problem, method)
            assert result.value == pytest.approx(
                result.allocation.objective_value("maxmin", problem.payoffs)
            )

    def test_sum_and_maxmin_relationship(self, problem_factory):
        """SUM optimum >= K_active * MAXMIN optimum (pigeonhole)."""
        problem = problem_factory(seed=5, n_clusters=5, objective="maxmin")
        maxmin = solve(problem, "lp").value
        total = solve(problem.with_objective("sum"), "lp").value
        n_active = int(problem.active_mask.sum())
        assert total >= n_active * maxmin - 1e-6

    def test_solution_is_json_reportable(self, problem_factory):
        """Results round-trip through plain JSON (tooling contract)."""
        problem = problem_factory(seed=6, n_clusters=4)
        result = solve(problem, "lprg")
        payload = {
            "method": result.method,
            "value": result.value,
            "alpha": result.allocation.alpha.tolist(),
            "beta": result.allocation.beta.tolist(),
        }
        restored = json.loads(json.dumps(payload))
        assert restored["value"] == result.value
        assert np.array_equal(np.array(restored["alpha"]), result.allocation.alpha)
