"""Property-based tests for CapacityLedger: no sequence of legal
operations can drive any resource negative or corrupt the accounting."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import CapacityLedger, fully_connected_platform


@st.composite
def operation_sequences(draw):
    """Random sequences of (kind, k, l, fraction) ledger operations."""
    n_ops = draw(st.integers(min_value=0, max_value=25))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["local", "remote"]))
        k = draw(st.integers(min_value=0, max_value=3))
        l = draw(st.integers(min_value=0, max_value=3))
        frac = draw(st.floats(min_value=0.0, max_value=1.0))
        ops.append((kind, k, l, frac))
    return ops


class TestLedgerInvariants:
    @given(operation_sequences())
    @settings(max_examples=40)
    def test_resources_never_negative(self, ops):
        platform = fully_connected_platform(4, g=60.0, bw=15.0, max_connect=3)
        ledger = CapacityLedger(platform)
        for kind, k, l, frac in ops:
            if kind == "local":
                amount = frac * ledger.speed[k]
                ledger.commit_local(k, amount)
            else:
                if k == l or not ledger.can_open_connection(k, l):
                    continue
                benefit = ledger.remote_benefit(k, l)
                if benefit <= 0:
                    continue
                ledger.commit_remote(k, l, frac * benefit)
            assert np.all(ledger.speed >= 0)
            assert np.all(ledger.local >= 0)
            assert all(c >= 0 for c in ledger.connections.values())

    @given(operation_sequences())
    @settings(max_examples=25)
    def test_conservation(self, ops):
        """Consumed speed equals the sum of committed amounts."""
        platform = fully_connected_platform(4, g=60.0, bw=15.0, max_connect=3)
        ledger = CapacityLedger(platform)
        committed = 0.0
        for kind, k, l, frac in ops:
            if kind == "local":
                amount = frac * ledger.speed[k]
                ledger.commit_local(k, amount)
                committed += amount
            else:
                if k == l or not ledger.can_open_connection(k, l):
                    continue
                benefit = ledger.remote_benefit(k, l)
                if benefit <= 0:
                    continue
                amount = frac * benefit
                ledger.commit_remote(k, l, amount)
                committed += amount
        consumed = platform.speeds.sum() - ledger.speed.sum()
        assert consumed == np.float64(committed) or abs(consumed - committed) < 1e-6

    @given(operation_sequences())
    @settings(max_examples=25)
    def test_benefit_respects_residuals(self, ops):
        """remote_benefit never exceeds any of its four residual inputs."""
        platform = fully_connected_platform(4, g=60.0, bw=15.0, max_connect=3)
        ledger = CapacityLedger(platform)
        for kind, k, l, frac in ops:
            if kind == "remote" and k != l:
                benefit = ledger.remote_benefit(k, l)
                if benefit > 0:
                    assert benefit <= ledger.local[k] + 1e-12
                    assert benefit <= ledger.local[l] + 1e-12
                    assert benefit <= ledger.speed[l] + 1e-12
                    assert benefit <= platform.route_bandwidth(k, l) + 1e-12
                    ledger.commit_remote(k, l, frac * benefit)
            elif kind == "local":
                ledger.commit_local(k, frac * ledger.speed[k])
