"""Tests for repro.platform.topology (Platform and CapacityLedger)."""

import numpy as np
import pytest

from repro.platform.cluster import Cluster
from repro.platform.links import BackboneLink
from repro.platform.routing import Route
from repro.platform.topology import CapacityLedger, Platform
from repro import line_platform, star_platform
from repro.util.errors import PlatformError, RoutingError


class TestPlatformConstruction:
    def test_duplicate_cluster_names_rejected(self):
        clusters = [
            Cluster("C", 1.0, 1.0, "R0"),
            Cluster("C", 1.0, 1.0, "R1"),
        ]
        with pytest.raises(PlatformError):
            Platform(clusters, ["R0", "R1"], [])

    def test_unknown_router_rejected(self):
        with pytest.raises(PlatformError):
            Platform([Cluster("C", 1.0, 1.0, "missing")], ["R0"], [])

    def test_duplicate_link_names_rejected(self):
        links = [
            BackboneLink("b", ("R0", "R1"), 1.0, 1),
            BackboneLink("b", ("R1", "R2"), 1.0, 1),
        ]
        with pytest.raises(PlatformError):
            Platform(
                [Cluster("C", 1.0, 1.0, "R0")], ["R0", "R1", "R2"], links
            )

    def test_link_to_unknown_router_rejected(self):
        with pytest.raises(PlatformError):
            Platform(
                [Cluster("C", 1.0, 1.0, "R0")],
                ["R0"],
                [BackboneLink("b", ("R0", "Rx"), 1.0, 1)],
            )

    def test_explicit_route_endpoint_mismatch_rejected(self):
        clusters = [Cluster("A", 1.0, 1.0, "R0"), Cluster("B", 1.0, 1.0, "R1")]
        links = [BackboneLink("b", ("R0", "R1"), 1.0, 1)]
        bad = {
            (0, 1): Route(routers=("R1", "R0"), links=("b",), bandwidth=1.0, connection_cap=1)
        }
        with pytest.raises(RoutingError):
            Platform(clusters, ["R0", "R1"], links, routes=bad)

    def test_explicit_route_unknown_link_rejected(self):
        clusters = [Cluster("A", 1.0, 1.0, "R0"), Cluster("B", 1.0, 1.0, "R1")]
        bad = {
            (0, 1): Route(routers=("R0", "R1"), links=("nope",), bandwidth=1.0, connection_cap=1)
        }
        with pytest.raises(RoutingError):
            Platform(clusters, ["R0", "R1"], [], routes=bad)


class TestPlatformQueries:
    def test_vectors(self, complete4):
        assert np.array_equal(complete4.speeds, [50.0, 100.0, 150.0, 200.0])
        assert np.all(complete4.local_capacities == 60.0)

    def test_cluster_index(self, star5):
        assert star5.cluster_index("hub") == 0
        with pytest.raises(PlatformError):
            star5.cluster_index("nope")

    def test_route_queries(self, line3):
        assert line3.has_route(0, 2)
        assert line3.route(0, 2).links == ("seg0", "seg1")
        assert line3.route_bandwidth(0, 2) == 10.0
        with pytest.raises(RoutingError):
            line3.route(0, 0)

    def test_routes_through(self, line3):
        through = set(line3.routes_through("seg0"))
        assert (0, 1) in through and (0, 2) in through and (1, 0) in through
        assert (1, 2) not in through
        with pytest.raises(PlatformError):
            line3.routes_through("nope")

    def test_routed_pairs_sorted(self, line3):
        pairs = line3.routed_pairs()
        assert pairs == tuple(sorted(pairs))

    def test_describe_and_repr(self, line3):
        assert "Platform(K=3" in repr(line3)
        text = line3.describe()
        assert "seg0" in text and "C0" in text


class TestCapacityLedger:
    def test_initial_state_matches_platform(self, line3):
        ledger = CapacityLedger(line3)
        assert np.array_equal(ledger.speed, line3.speeds)
        assert ledger.connections["seg0"] == 4

    def test_remote_benefit_is_paper_min(self, line3):
        ledger = CapacityLedger(line3)
        # min(g_0, bw(route), g_1, s_1) = min(50, 10, 50, 100) = 10
        assert ledger.remote_benefit(0, 1) == 10.0

    def test_remote_benefit_requires_route(self):
        platform = star_platform(2)
        ledger = CapacityLedger(platform)
        with pytest.raises(ValueError):
            ledger.remote_benefit(1, 1)

    def test_commit_remote_updates_everything(self, line3):
        ledger = CapacityLedger(line3)
        ledger.commit_remote(0, 2, 7.0)
        assert ledger.speed[2] == 93.0
        assert ledger.local[0] == 43.0 and ledger.local[2] == 43.0
        assert ledger.local[1] == 50.0  # transit cluster's local link untouched
        assert ledger.connections["seg0"] == 3 and ledger.connections["seg1"] == 3

    def test_commit_local_only_touches_speed(self, line3):
        ledger = CapacityLedger(line3)
        ledger.commit_local(1, 30.0)
        assert ledger.speed[1] == 70.0
        assert ledger.local[1] == 50.0

    def test_connection_exhaustion(self, line3):
        ledger = CapacityLedger(line3)
        for _ in range(4):
            assert ledger.can_open_connection(0, 1)
            ledger.commit_remote(0, 1, 0.0)
        assert not ledger.can_open_connection(0, 1)
        assert ledger.remote_benefit(0, 1) == 0.0
        with pytest.raises(PlatformError):
            ledger.commit_remote(0, 1, 0.0)

    def test_overdraft_rejected(self, line3):
        ledger = CapacityLedger(line3)
        with pytest.raises(PlatformError):
            ledger.commit_local(0, 1000.0)

    def test_local_cap_degenerates_to_speed(self):
        # Isolated cluster: nothing else could ever use it.
        platform = line_platform(1)
        ledger = CapacityLedger(platform)
        assert ledger.local_cap(0) == 100.0

    def test_local_cap_is_paper_formula(self, line3):
        ledger = CapacityLedger(line3)
        # max over m of min(g_0, bw, g_m, s_0) = min(50, 10, 50, 100) = 10
        assert ledger.local_cap(0) == 10.0

    def test_charge_transfer_counts_connections(self, line3):
        ledger = CapacityLedger(line3)
        ledger.charge_transfer(0, 2, 5.0, n_connections=2)
        assert ledger.connections["seg0"] == 2
        with pytest.raises(PlatformError):
            ledger.charge_transfer(0, 2, 0.0, n_connections=3)

    def test_snapshot_and_repr(self, line3):
        ledger = CapacityLedger(line3)
        snap = ledger.snapshot()
        ledger.commit_local(0, 10.0)
        assert snap["speed"][0] == 100.0  # snapshot is a copy
        assert "CapacityLedger" in repr(ledger)
