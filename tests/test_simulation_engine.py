"""Tests for the flow-level simulation engine and metrics."""

import numpy as np
import pytest

from repro import SteadyStateProblem, line_platform, solve, star_platform
from repro.schedule import build_periodic_schedule
from repro.simulation import FlowSimulator
from repro.simulation.metrics import jain_index, summarize, throughput_ratios
from repro.util.errors import SimulationError


def _run(problem, method="lprg", n_periods=8, denominator=200, rng=0,
         rate_policy="maxmin"):
    result = solve(problem, method, rng=rng)
    schedule = build_periodic_schedule(
        problem.platform, result.allocation, denominator=denominator
    )
    sim = FlowSimulator(problem.platform, rate_policy=rate_policy)
    return schedule, sim.run(schedule, n_periods=n_periods)


class TestSteadyStateRealisation:
    def test_local_only_schedule(self):
        problem = SteadyStateProblem(line_platform(1), objective="maxmin")
        schedule, out = _run(problem)
        assert out.late_flows == 0
        assert np.allclose(out.achieved_throughputs(), schedule.throughputs)

    def test_star_with_exports(self):
        platform = star_platform(3, hub_speed=0.0, g=60.0, bw=10.0, max_connect=2)
        problem = SteadyStateProblem(platform, [1, 0, 0, 0], objective="maxmin")
        schedule, out = _run(problem)
        ratios = throughput_ratios(out, schedule.throughputs)
        assert np.allclose(ratios, 1.0, atol=1e-9)

    @pytest.mark.parametrize("method", ["greedy", "lprg", "milp"])
    def test_random_platforms_all_methods(self, problem_factory, method):
        problem = problem_factory(seed=2, n_clusters=5)
        schedule, out = _run(problem, method=method)
        ratios = throughput_ratios(out, schedule.throughputs)
        assert np.all(ratios >= 1.0 - 1e-9), ratios

    def test_multiple_seeds_never_late_under_reservation(self, problem_factory):
        for seed in range(4):
            problem = problem_factory(seed=seed, n_clusters=4)
            schedule, out = _run(problem, n_periods=5, rate_policy="reserved")
            assert out.late_flows == 0
            assert np.allclose(
                out.achieved_throughputs(), schedule.throughputs, rtol=1e-9
            )

    def test_elapsed_close_to_schedule_horizon(self, problem_factory):
        problem = problem_factory(seed=1, n_clusters=4)
        schedule, out = _run(problem, n_periods=6)
        # All work finishes within the scheduled horizon (+ drain slack).
        assert out.elapsed <= 6 * schedule.period * (1 + 1e-6)


class TestRatePolicies:
    def test_reserved_policy_meets_all_deadlines(self, problem_factory):
        for seed in range(3):
            problem = problem_factory(seed=seed, n_clusters=5)
            result = solve(problem, "lprg")
            schedule = build_periodic_schedule(
                problem.platform, result.allocation, denominator=200
            )
            sim = FlowSimulator(problem.platform, rate_policy="reserved")
            out = sim.run(schedule, n_periods=6)
            assert out.late_flows == 0
            ratios = throughput_ratios(out, schedule.throughputs)
            assert np.all(ratios >= 1.0 - 1e-9)

    def test_maxmin_policy_converges_even_if_late(self, problem_factory):
        problem = problem_factory(seed=2, n_clusters=5)
        result = solve(problem, "lprg")
        schedule = build_periodic_schedule(
            problem.platform, result.allocation, denominator=200
        )
        out = FlowSimulator(problem.platform, rate_policy="maxmin").run(
            schedule, n_periods=6
        )
        ratios = throughput_ratios(out, schedule.throughputs)
        assert np.all(ratios >= 1.0 - 1e-9)

    def test_unknown_policy_rejected(self, line3):
        with pytest.raises(SimulationError):
            FlowSimulator(line3, rate_policy="bogus")


class TestEngineEdgeCases:
    def test_empty_schedule(self):
        # Zero-payoff problem: nothing is allocated, nothing simulated.
        problem = SteadyStateProblem(line_platform(2), [0.0, 0.0])
        result = solve(problem, "greedy")
        schedule = build_periodic_schedule(problem.platform, result.allocation)
        out = FlowSimulator(problem.platform).run(schedule, n_periods=3)
        assert out.completed.sum() == 0.0

    def test_event_budget(self, problem_factory):
        problem = problem_factory(seed=0, n_clusters=4)
        result = solve(problem, "lprg")
        schedule = build_periodic_schedule(problem.platform, result.allocation)
        sim = FlowSimulator(problem.platform, max_events=2)
        with pytest.raises(SimulationError):
            sim.run(schedule, n_periods=4)

    def test_result_repr(self, problem_factory):
        problem = problem_factory(seed=0, n_clusters=3)
        _, out = _run(problem, n_periods=4)
        assert "SimulationResult" in repr(out)


class TestMetrics:
    def test_jain_equal_shares(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_jain_single_taker(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_jain_empty_and_zero(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_throughput_ratios_zero_nominal(self, problem_factory):
        problem = problem_factory(seed=3, n_clusters=4)
        schedule, out = _run(problem)
        nominal = schedule.throughputs.copy()
        nominal[0] = 0.0  # pretend app 0 had no allocation
        ratios = throughput_ratios(out, nominal)
        assert ratios[0] == 1.0  # vacuous convention

    def test_summarize_keys(self, problem_factory):
        problem = problem_factory(seed=3, n_clusters=4)
        schedule, out = _run(problem)
        s = summarize(out, schedule.throughputs)
        assert {"elapsed", "min_ratio", "mean_ratio", "late_flows", "jain_achieved"} <= set(s)
