"""Tests for repro.lp.indexing and repro.lp.builder."""

import numpy as np
import pytest

from repro import SteadyStateProblem, line_platform, star_platform
from repro.lp.builder import build_lp
from repro.lp.indexing import VariableIndex
from repro.lp.scipy_backend import solve_lp_scipy


class TestVariableIndex:
    def test_alpha_includes_diagonal_and_routed_pairs(self, line3):
        idx = VariableIndex(line3, with_t=True)
        assert idx.n_alpha == 3 + 6  # diagonal + all ordered pairs
        assert idx.has_alpha(0, 0) and idx.has_alpha(0, 2)

    def test_beta_only_for_backbone_routes(self):
        from repro import Cluster, Platform

        # Two clusters on the same router: route exists but has no links.
        platform = Platform(
            [Cluster("A", 10.0, 10.0, "R0"), Cluster("B", 10.0, 10.0, "R0")],
            ["R0"],
            [],
        )
        idx = VariableIndex(platform, with_t=False)
        assert idx.has_alpha(0, 1)
        assert not idx.has_beta(0, 1)
        assert idx.n_beta == 0

    def test_t_index_only_with_maxmin(self, line3):
        idx = VariableIndex(line3, with_t=False)
        with pytest.raises(ValueError):
            idx.t_index
        idx_t = VariableIndex(line3, with_t=True)
        assert idx_t.t_index == idx_t.n_vars - 1

    def test_matrix_scatter_roundtrip(self, line3):
        idx = VariableIndex(line3, with_t=False)
        x = np.arange(idx.n_vars, dtype=float) + 1
        alpha = idx.alpha_matrix(x)
        for i, (k, l) in enumerate(idx.alpha_pairs):
            assert alpha[k, l] == x[i]
        beta = idx.beta_matrix(x)
        for i, (k, l) in enumerate(idx.beta_pairs):
            assert beta[k, l] == x[idx.n_alpha + i]

    def test_integrality_flags(self, line3):
        idx = VariableIndex(line3, with_t=True)
        flags = idx.integrality()
        assert flags.sum() == idx.n_beta
        assert flags[idx.t_index] == 0
        assert flags[: idx.n_alpha].sum() == 0

    def test_disconnected_pair_has_no_alpha(self):
        from repro import Cluster, Platform

        platform = Platform(
            [Cluster("A", 1.0, 1.0, "R0"), Cluster("B", 1.0, 1.0, "R1")],
            ["R0", "R1"],
            [],
        )
        idx = VariableIndex(platform, with_t=False)
        assert not idx.has_alpha(0, 1)
        assert idx.n_alpha == 2  # only the two diagonals


class TestBuildLP:
    def test_row_structure(self, line3):
        problem = SteadyStateProblem(line3, objective="maxmin")
        inst = build_lp(problem)
        labels = inst.row_labels
        assert sum(1 for l in labels if l.startswith("compute")) == 3
        assert sum(1 for l in labels if l.startswith("local")) == 3
        assert sum(1 for l in labels if l.startswith("connect")) == 2
        assert sum(1 for l in labels if l.startswith("bandwidth")) == 6
        assert sum(1 for l in labels if l.startswith("maxmin")) == 3
        assert inst.A_ub.shape == (len(labels), inst.n_vars)

    def test_sum_objective_uses_payoffs(self):
        problem = SteadyStateProblem(line_platform(2), [2.0, 3.0], objective="sum")
        inst = build_lp(problem)
        idx = inst.index
        assert inst.obj[idx.alpha(0, 0)] == 2.0
        assert inst.obj[idx.alpha(1, 0)] == 3.0

    def test_maxmin_rows_skip_zero_payoffs(self):
        problem = SteadyStateProblem(line_platform(2), [1.0, 0.0], objective="maxmin")
        inst = build_lp(problem)
        assert sum(1 for l in inst.row_labels if l.startswith("maxmin")) == 1

    def test_beta_upper_bounds_are_route_caps(self, line3):
        problem = SteadyStateProblem(line3, objective="sum")
        inst = build_lp(problem)
        for (k, l) in inst.index.beta_pairs:
            assert inst.ub[inst.index.beta(k, l)] == 4  # max_connect

    def test_with_bounds_shares_matrices(self, line3):
        problem = SteadyStateProblem(line3, objective="sum")
        inst = build_lp(problem)
        clone = inst.with_bounds(inst.lb, inst.ub + 1)
        assert clone.A_ub is inst.A_ub
        assert clone.ub[0] == inst.ub[0] + 1

    def test_bounds_list_format(self, line3):
        inst = build_lp(SteadyStateProblem(line3, objective="sum"))
        bounds = inst.bounds_list()
        assert len(bounds) == inst.n_vars
        assert all(b[0] == 0.0 for b in bounds)

    def test_objective_override(self, line3):
        problem = SteadyStateProblem(line3, objective="maxmin")
        inst = build_lp(problem, objective="sum")
        assert not inst.index.with_t


class TestLPValuesOnKnownPlatforms:
    def test_local_only_platform(self):
        # No backbone at all: each cluster computes its own 100.
        from repro import Cluster, Platform

        platform = Platform(
            [Cluster("A", 100.0, 10.0, "R0"), Cluster("B", 50.0, 10.0, "R1")],
            ["R0", "R1"],
            [],
        )
        problem = SteadyStateProblem(platform, objective="maxmin")
        sol = solve_lp_scipy(build_lp(problem))
        assert sol.value == pytest.approx(50.0)
        problem_sum = problem.with_objective("sum")
        sol = solve_lp_scipy(build_lp(problem_sum))
        assert sol.value == pytest.approx(150.0)

    def test_star_with_zero_speed_hub(self):
        # Hub has payoff 1 but no speed; must export through spokes
        # (bw=20, max_connect=3 per spoke, hub g=80, leaf g=80, s=100).
        platform = star_platform(4, hub_speed=0.0, g=80.0, bw=20.0, max_connect=3)
        problem = SteadyStateProblem(platform, [1, 0, 0, 0, 0], objective="maxmin")
        sol = solve_lp_scipy(build_lp(problem))
        # Export limited by hub's g = 80.
        assert sol.value == pytest.approx(80.0)

    def test_bandwidth_bound(self):
        # Single leaf: export <= min(g,bw*max_connect, s_leaf) = 3*20=60.
        platform = star_platform(1, hub_speed=0.0, g=80.0, bw=20.0, max_connect=3)
        problem = SteadyStateProblem(platform, [1, 0], objective="maxmin")
        sol = solve_lp_scipy(build_lp(problem))
        assert sol.value == pytest.approx(60.0)

    def test_sum_equals_total_speed_when_symmetric(self, line3):
        problem = SteadyStateProblem(line3, objective="sum")
        sol = solve_lp_scipy(build_lp(problem))
        assert sol.value == pytest.approx(300.0)
