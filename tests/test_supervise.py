"""Supervised execution: engine retry/quarantine + shard supervision.

Three layers under test. (1) The engine's :class:`RetryPolicy` path:
transient faults retried with backoff, deterministic faults quarantined
after the campaign completes, pool crashes and task timeouts bounded.
(2) Offline shard surgery: heartbeats, :func:`shard_progress`, and
:func:`steal_shard` splitting a dead shard at its durable watermark.
(3) The :class:`ShardSupervisor` end-to-end: shard-level retry,
quarantine classification (inline and across the subprocess CLI's
exit-code/stderr contract), straggler stealing on a preempting backend
— all of it leaving the merged aggregate bitwise-identical to the
fault-free serial fold.
"""

from __future__ import annotations

import json
import pickle
import time
from pathlib import Path

import pytest

from repro.distrib import (
    QUARANTINE_EXIT,
    InlineShardExecutor,
    ProcessShardExecutor,
    ShardCancelled,
    ShardCrashError,
    ShardError,
    ShardSupervisor,
    SubprocessShardExecutor,
    SupervisionOptions,
    build_shard_manifests,
    campaign_status,
    classify_shard_failure,
    load_manifests,
    merge_shards,
    read_heartbeat,
    run_shard,
    shard_progress,
    steal_shard,
    write_manifests,
)
from repro.distrib.executor import ShardExitError
from repro.experiments import run_sweep, sample_settings
from repro.experiments.config import DEFAULT_SCENARIO
from repro.parallel import build_sweep_tasks
from repro.parallel.engine import (
    CampaignEngine,
    QuarantineError,
    RetryPolicy,
    TaskFailure,
)
from repro.parallel.stream import SweepAccumulator
from repro.util.errors import SolverError
from repro.util.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultRule,
    InjectedShardKill,
)
from repro.util.rng import seed_sequence_of

from tests.test_distrib_campaign import tables_sans_runtime
from tests.test_stream_equivalence import synthetic_task_rows

#: backoff-free policies keep the suite fast and deterministic
FAST = RetryPolicy(max_attempts=3, backoff=0.0)


def _double(x):
    return x * 2


def _sleep_if_zero(task):
    if task == 0:
        time.sleep(30)
    return task


def _sleep_zero_once(arg):
    task, flag = arg
    if task == 0:
        marker = Path(flag)
        if not marker.exists():
            marker.write_text("x")
            time.sleep(30)
    return task


def fake_sweep_worker(task):
    """Deterministic no-LP stand-in for ``run_sweep_task`` (inline use)."""
    return synthetic_task_rows(
        (task.setting_index, task.replicate, task.methods,
         task.objectives, 99)
    )


# ----------------------------------------------------------------------
# synthetic campaign plumbing
# ----------------------------------------------------------------------

@pytest.fixture()
def synthetic_campaign(monkeypatch):
    monkeypatch.setattr(
        "repro.parallel.sweep.run_sweep_task", fake_sweep_worker
    )
    return dict(
        settings=sample_settings(3, rng=7, k_values=[3, 4]),
        scenario=DEFAULT_SCENARIO,
        methods=("greedy",),
        objectives=("maxmin",),
        n_platforms=2,
        root=seed_sequence_of(7),
    )


def _plan(campaign, shard_dir, n_shards):
    manifests = build_shard_manifests(
        campaign["settings"], campaign["scenario"], campaign["methods"],
        campaign["objectives"], campaign["n_platforms"], campaign["root"],
        n_shards=n_shards, shard_dir=shard_dir,
    )
    write_manifests(manifests, shard_dir)
    return manifests


def _reference_state(campaign) -> dict:
    tasks = build_sweep_tasks(
        campaign["settings"], campaign["scenario"], campaign["methods"],
        campaign["objectives"], campaign["n_platforms"], campaign["root"],
    )
    acc = SweepAccumulator()
    for task in tasks:
        acc.fold_task(fake_sweep_worker(task))
    return acc.state_dict()


# ----------------------------------------------------------------------
# RetryPolicy / SupervisionOptions
# ----------------------------------------------------------------------

class TestPolicies:
    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(backoff=0.1, backoff_factor=2.0, max_backoff=0.3)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.3)  # capped
        assert policy.delay(9) == pytest.approx(0.3)
        assert RetryPolicy(backoff=0.0).delay(5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="task_timeout"):
            RetryPolicy(task_timeout=0)
        with pytest.raises(ValueError, match="unknown RetryPolicy"):
            RetryPolicy.from_dict({"attempts": 3})
        assert RetryPolicy.from_dict(FAST.to_dict()) == FAST

    def test_supervision_options_validation_and_round_trip(self):
        with pytest.raises(ValueError, match="shard_timeout"):
            SupervisionOptions(shard_timeout=0)
        with pytest.raises(ValueError, match="straggler_after"):
            SupervisionOptions(straggler_after=-1)
        with pytest.raises(ValueError, match="min_steal_tasks"):
            SupervisionOptions(min_steal_tasks=0)
        with pytest.raises(ValueError, match="must be a RetryPolicy"):
            SupervisionOptions(retry={"max_attempts": 3})
        with pytest.raises(ValueError, match="unknown SupervisionOptions"):
            SupervisionOptions.from_dict({"stragglers": 1})
        opts = SupervisionOptions(retry=FAST, straggler_after=1.5)
        assert SupervisionOptions.from_dict(opts.to_dict()) == opts

    def test_quarantine_error_survives_pickling(self):
        exc = QuarantineError([
            TaskFailure(task_id="2/0", index=2, error="ValueError('x')",
                        traceback="tb", attempts=1),
        ])
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, QuarantineError)
        assert clone.failures == exc.failures
        assert "2/0" in str(clone)


# ----------------------------------------------------------------------
# the engine's supervised mode
# ----------------------------------------------------------------------

class TestEngineSupervised:
    def test_serial_transient_fault_is_retried_and_heals(self):
        plan = FaultPlan(rules=(
            FaultRule(scope="task", fault="error", match="2", times=2),
        ))
        engine = CampaignEngine(
            _double, jobs=1, retry_policy=FAST, fault_plan=plan
        )
        assert engine.run(range(5)) == [0, 2, 4, 6, 8]
        assert engine.last_retries == 2

    def test_serial_without_policy_keeps_failing_fast(self):
        plan = FaultPlan(rules=(
            FaultRule(scope="task", fault="error", match="2"),
        ))
        engine = CampaignEngine(_double, jobs=1, fault_plan=plan)
        with pytest.raises(SolverError, match="campaign task '2' failed"):
            engine.run(range(5))

    def test_serial_exhausted_retries_name_the_attempts(self):
        plan = FaultPlan(rules=(
            FaultRule(scope="task", fault="error", match="2", times=99),
        ))
        engine = CampaignEngine(
            _double, jobs=1, retry_policy=FAST, fault_plan=plan
        )
        with pytest.raises(SolverError, match="after 3 attempts"):
            engine.run(range(5))

    def test_serial_quarantine_completes_the_campaign(self):
        plan = FaultPlan(rules=(
            FaultRule(scope="task", fault="fatal", match="1", times=99),
            FaultRule(scope="task", fault="fatal", match="3", times=99),
        ))
        engine = CampaignEngine(
            _double, jobs=1, retry_policy=FAST, fault_plan=plan
        )
        consumed: dict = {}

        class Consumer:
            def add(self, index, result):
                consumed[index] = result

        with pytest.raises(QuarantineError) as excinfo:
            engine.run(range(5), consumer=Consumer())
        failures = excinfo.value.failures
        assert [f.task_id for f in failures] == ["1", "3"]
        assert all("InjectedTaskError" in f.error for f in failures)
        assert consumed == {0: 0, 2: 4, 4: 8}  # every other task finished

    def test_serial_quarantine_off_aborts_on_first_deterministic(self):
        plan = FaultPlan(rules=(
            FaultRule(scope="task", fault="fatal", match="1"),
        ))
        policy = RetryPolicy(backoff=0.0, quarantine=False)
        engine = CampaignEngine(
            _double, jobs=1, retry_policy=policy, fault_plan=plan
        )
        with pytest.raises(SolverError, match="campaign task '1' failed"):
            engine.run(range(5))

    def test_pool_transient_fault_is_retried_and_heals(self):
        plan = FaultPlan(rules=(
            FaultRule(scope="task", fault="error", match="3", times=1),
        ))
        engine = CampaignEngine(
            _double, jobs=2, chunk_size=2, retry_policy=FAST, fault_plan=plan
        )
        assert engine.run(range(8)) == [2 * i for i in range(8)]
        assert engine.last_retries == 1

    def test_pool_quarantine_reports_every_failure_in_task_order(self):
        plan = FaultPlan(rules=(
            FaultRule(scope="task", fault="fatal", match="1", times=99),
            FaultRule(scope="task", fault="fatal", match="6", times=99),
        ))
        engine = CampaignEngine(
            _double, jobs=2, chunk_size=3, retry_policy=FAST, fault_plan=plan
        )
        with pytest.raises(QuarantineError) as excinfo:
            engine.run(range(8))
        assert [f.task_id for f in excinfo.value.failures] == ["1", "6"]

    def test_pool_worker_crash_is_retried_under_policy(self):
        plan = FaultPlan(rules=(
            FaultRule(scope="task", fault="crash", match="2", times=1),
        ))
        engine = CampaignEngine(
            _double, jobs=2, chunk_size=1,
            retry_policy=RetryPolicy(max_attempts=2, backoff=0.0),
            fault_plan=plan,
        )
        assert engine.run(range(4)) == [0, 2, 4, 6]

    def test_pool_task_timeout_aborts_when_budget_is_one(self):
        policy = RetryPolicy(max_attempts=1, backoff=0.0, task_timeout=0.4)
        engine = CampaignEngine(
            _sleep_if_zero, jobs=2, chunk_size=1, retry_policy=policy,
            fault_plan=None,
        )
        with pytest.raises(SolverError, match="task timeout"):
            engine.run(range(4))

    def test_pool_task_timeout_retry_recovers(self, tmp_path):
        flag = tmp_path / "flag"
        policy = RetryPolicy(max_attempts=2, backoff=0.0, task_timeout=0.6)
        engine = CampaignEngine(
            _sleep_zero_once, jobs=2, chunk_size=1, retry_policy=policy,
            fault_plan=None,
        )
        tasks = [(i, str(flag)) for i in range(4)]
        assert engine.run(tasks) == [0, 1, 2, 3]


# ----------------------------------------------------------------------
# classification
# ----------------------------------------------------------------------

class TestClassification:
    @pytest.mark.parametrize(
        "exc,expected",
        [
            (ShardExitError("m.json", QUARANTINE_EXIT, ""), "deterministic"),
            (ShardExitError("m.json", 1, "boom"), "transient"),
            (ShardExitError("m.json", 73, ""), "transient"),
            (QuarantineError([]), "deterministic"),
            (ShardCrashError("died"), "transient"),
            (ShardCancelled("stolen"), "transient"),
            (InjectedShardKill("kill"), "transient"),
            (OSError("io"), "transient"),
            (TimeoutError(), "transient"),
            (ValueError("bug"), "deterministic"),
            (SolverError("bug"), "deterministic"),
        ],
    )
    def test_classify_shard_failure(self, exc, expected):
        assert classify_shard_failure(exc) == expected

    def test_shard_exit_error_pickles_with_context(self):
        exc = ShardExitError("/tmp/m.json", 5, "trace tail")
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.manifest_path == "/tmp/m.json"
        assert clone.returncode == 5
        assert clone.stderr_tail == "trace tail"
        assert "exited with code 5" in str(clone)


# ----------------------------------------------------------------------
# heartbeats, status, offline stealing
# ----------------------------------------------------------------------

class TestOfflineSupervision:
    def test_heartbeat_round_trip(self, tmp_path):
        path = tmp_path / "s.heartbeat"
        assert read_heartbeat(path) is None
        from repro.distrib import write_heartbeat

        write_heartbeat(path, 3, 10)
        beat = read_heartbeat(path)
        assert beat["tasks_done"] == 3 and beat["n_tasks"] == 10
        assert beat["time"] <= time.time()
        path.write_text("{torn")
        assert read_heartbeat(path) is None

    def test_status_reflects_run_and_unrun_shards(
        self, synthetic_campaign, tmp_path
    ):
        manifests = _plan(synthetic_campaign, tmp_path, 2)
        run_shard(manifests[0])
        status = campaign_status(tmp_path)
        done, pending = status[0], status[1]
        assert done["complete"] and done["folded"] == done["n_tasks"]
        assert done["heartbeat"]["tasks_done"] == done["n_tasks"]
        assert not pending["complete"]
        assert "never ran" in pending["problem"]
        assert pending["heartbeat"] is None

    def test_steal_splits_at_the_durable_watermark(
        self, synthetic_campaign, tmp_path
    ):
        manifests = _plan(synthetic_campaign, tmp_path, 2)
        plan = FaultPlan(rules=(
            FaultRule(scope="shard", fault="kill", match=0, after_tasks=2),
        ))
        with pytest.raises(InjectedShardKill):
            run_shard(manifests[0], snapshot_every=1, fault_plan=plan)

        part_a, part_b = steal_shard(tmp_path, 0, force=True)
        assert (part_a.task_start, part_a.task_stop) == (0, 2)
        assert (part_b.task_start, part_b.task_stop) == (2, 3)
        assert part_b.shard_index == 2  # fresh index, fresh artifacts
        assert part_b.checkpoint_path != part_a.checkpoint_path

        run_shard(part_a, resume=True)  # replays its 2-task prefix
        run_shard(part_b)
        run_shard(manifests[1])
        merged = merge_shards(load_manifests(tmp_path))
        assert merged.state_dict() == _reference_state(synthetic_campaign)

    def test_steal_refuses_a_fresh_heartbeat_without_force(
        self, synthetic_campaign, tmp_path
    ):
        manifests = _plan(synthetic_campaign, tmp_path, 2)
        from repro.distrib import write_heartbeat

        write_heartbeat(manifests[0].heartbeat_path, 1, 3)
        with pytest.raises(ShardError, match="may still be running"):
            steal_shard(tmp_path, 0, stale_after=3600)
        part_a, part_b = steal_shard(tmp_path, 0, stale_after=3600, force=True)
        assert part_b is not None  # nothing durable: the whole range moves
        assert part_a.task_start == part_a.task_stop

    def test_steal_unknown_shard_and_completed_shard(
        self, synthetic_campaign, tmp_path
    ):
        manifests = _plan(synthetic_campaign, tmp_path, 2)
        with pytest.raises(ShardError, match="no shard 9"):
            steal_shard(tmp_path, 9)
        run_shard(manifests[1])
        part_a, part_b = steal_shard(tmp_path, 1, force=True)
        assert part_b is None  # fully folded: nothing to steal
        assert (part_a.task_start, part_a.task_stop) == (3, 6)

    def test_incomplete_merge_error_names_shards_and_resume_command(
        self, synthetic_campaign, tmp_path
    ):
        manifests = _plan(synthetic_campaign, tmp_path, 3)
        run_shard(manifests[0])
        with pytest.raises(ShardError) as excinfo:
            merge_shards(manifests)
        message = str(excinfo.value)
        assert "campaign is incomplete: 2 of 3 shard(s) unfinished" in message
        assert "shard 1 (tasks [2, 4))" in message
        assert "shard 2 (tasks [4, 6))" in message
        assert (
            f"shard run {manifests[1].manifest_path} --resume" in message
        )


# ----------------------------------------------------------------------
# the supervisor, inline backend (synthetic campaigns)
# ----------------------------------------------------------------------

class TestSupervisorInline:
    def _paths(self, manifests):
        return [m.manifest_path for m in manifests]

    def test_killed_shard_is_retried_to_bitwise_completion(
        self, synthetic_campaign, tmp_path, monkeypatch
    ):
        manifests = _plan(synthetic_campaign, tmp_path, 2)
        plan = FaultPlan(rules=(
            FaultRule(scope="shard", fault="kill", match=0, after_tasks=1,
                      corrupt_tail=True, times=1),
        ))
        monkeypatch.setenv(
            FAULT_PLAN_ENV, str(plan.save(tmp_path / "plan.json"))
        )
        supervisor = ShardSupervisor(
            InlineShardExecutor(),
            options=SupervisionOptions(retry=FAST),
        )
        report = supervisor.run(self._paths(manifests))
        assert report.shard_retries == 1
        assert {s["status"] for s in report.shards} == {"done"}
        merged = merge_shards(load_manifests(tmp_path))
        assert merged.state_dict() == _reference_state(synthetic_campaign)

    def test_deterministic_task_failure_quarantines_not_crashes(
        self, synthetic_campaign, tmp_path, monkeypatch
    ):
        manifests = _plan(synthetic_campaign, tmp_path, 2)
        plan = FaultPlan(rules=(
            FaultRule(scope="task", fault="fatal", match="0/1", times=99),
        ))
        monkeypatch.setenv(
            FAULT_PLAN_ENV, str(plan.save(tmp_path / "plan.json"))
        )
        supervisor = ShardSupervisor(
            InlineShardExecutor(retry=FAST),
            options=SupervisionOptions(retry=FAST),
        )
        with pytest.raises(QuarantineError) as excinfo:
            supervisor.run(self._paths(manifests))
        assert [f.task_id for f in excinfo.value.failures] == ["0/1"]
        # the healthy shard completed and is on disk
        assert shard_progress(load_manifests(tmp_path)[1])["complete"]

    def test_exhausted_shard_retries_fail_the_campaign(
        self, synthetic_campaign, tmp_path, monkeypatch
    ):
        manifests = _plan(synthetic_campaign, tmp_path, 2)
        plan = FaultPlan(rules=(
            FaultRule(scope="shard", fault="kill", match=1, after_tasks=0,
                      times=99),
        ))
        monkeypatch.setenv(
            FAULT_PLAN_ENV, str(plan.save(tmp_path / "plan.json"))
        )
        supervisor = ShardSupervisor(
            InlineShardExecutor(),
            options=SupervisionOptions(
                retry=RetryPolicy(max_attempts=2, backoff=0.0)
            ),
        )
        with pytest.raises(ShardError, match="still failing after 2"):
            supervisor.run(self._paths(manifests))


# ----------------------------------------------------------------------
# the supervisor, preempting backends (real tiny campaigns)
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def real_campaign():
    return dict(
        settings=sample_settings(2, rng=5, k_values=[3]),
        scenario=DEFAULT_SCENARIO,
        methods=("greedy",),
        objectives=("maxmin",),
        n_platforms=2,
        root=seed_sequence_of(5),
    )


@pytest.fixture(scope="module")
def real_reference(real_campaign):
    rows = run_sweep(
        real_campaign["settings"],
        scenario=real_campaign["scenario"],
        methods=real_campaign["methods"],
        objectives=real_campaign["objectives"],
        n_platforms=real_campaign["n_platforms"],
        rng=5,
    )
    return SweepAccumulator.from_rows(
        rows,
        methods=real_campaign["methods"],
        objectives=real_campaign["objectives"],
    )


class TestSupervisorPreempting:
    def test_straggler_is_stolen_and_the_merge_stays_bitwise(
        self, real_campaign, real_reference, tmp_path, monkeypatch
    ):
        manifests = _plan(real_campaign, tmp_path, 2)
        plan = FaultPlan(rules=(
            FaultRule(scope="shard", fault="stall", match=1, after_tasks=1,
                      seconds=30.0, times=1),
        ))
        monkeypatch.setenv(
            FAULT_PLAN_ENV, str(plan.save(tmp_path / "plan.json"))
        )
        supervisor = ShardSupervisor(
            ProcessShardExecutor(jobs=2),
            options=SupervisionOptions(
                retry=FAST,
                straggler_after=0.75,
                min_steal_tasks=1,
                poll_interval=0.05,
            ),
        )
        report = supervisor.run([m.manifest_path for m in manifests])
        assert len(report.steals) == 1
        assert report.steals[0]["victim"] == 1
        merged = merge_shards(load_manifests(tmp_path))
        assert tables_sans_runtime(merged) == tables_sans_runtime(
            real_reference
        )

    def test_shard_timeout_charges_an_attempt_then_resumes(
        self, real_campaign, real_reference, tmp_path, monkeypatch
    ):
        manifests = _plan(real_campaign, tmp_path, 1)
        plan = FaultPlan(rules=(
            FaultRule(scope="shard", fault="stall", match=0, after_tasks=1,
                      seconds=60.0, times=1),
        ))
        monkeypatch.setenv(
            FAULT_PLAN_ENV, str(plan.save(tmp_path / "plan.json"))
        )
        supervisor = ShardSupervisor(
            ProcessShardExecutor(jobs=1),
            options=SupervisionOptions(retry=FAST, shard_timeout=2.0),
        )
        report = supervisor.run([manifests[0].manifest_path])
        assert report.shard_retries == 1
        merged = merge_shards(load_manifests(tmp_path))
        assert tables_sans_runtime(merged) == tables_sans_runtime(
            real_reference
        )

    def test_subprocess_quarantine_crosses_the_process_boundary(
        self, real_campaign, tmp_path, monkeypatch
    ):
        """A quarantined subprocess shard exits QUARANTINE_EXIT with a
        QUARANTINE-REPORT stderr line; the supervisor must classify it
        deterministic and rebuild the structured failures."""
        manifests = _plan(real_campaign, tmp_path, 1)
        plan = FaultPlan(rules=(
            FaultRule(scope="task", fault="fatal", match="1/0", times=99),
        ))
        monkeypatch.setenv(
            FAULT_PLAN_ENV, str(plan.save(tmp_path / "plan.json"))
        )
        supervisor = ShardSupervisor(
            SubprocessShardExecutor(jobs=1, retry=FAST),
            options=SupervisionOptions(retry=FAST),
        )
        with pytest.raises(QuarantineError) as excinfo:
            supervisor.run([manifests[0].manifest_path])
        failures = excinfo.value.failures
        assert [f.task_id for f in failures] == ["1/0"]
        assert "InjectedTaskError" in failures[0].error


# ----------------------------------------------------------------------
# CLI: shard status / shard steal / shard run --retry
# ----------------------------------------------------------------------

class TestCliSupervision:
    def test_status_and_steal_round_trip(
        self, synthetic_campaign, tmp_path, capsys
    ):
        from repro.experiments.cli import main

        manifests = _plan(synthetic_campaign, tmp_path, 2)
        run_shard(manifests[0])
        assert main(["shard", "status", str(tmp_path), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status[0]["complete"] and not status[1]["complete"]

        assert main(["shard", "steal", str(tmp_path), "1"]) == 0
        out = capsys.readouterr().out
        assert "split shard 1" in out and "shard run" in out
        ranges = sorted(
            (m.task_start, m.task_stop) for m in load_manifests(tmp_path)
        )
        assert ranges == [(0, 3), (3, 3), (3, 6)]

        assert main(["shard", "status", str(tmp_path)]) == 0
        table = capsys.readouterr().out
        assert "done" in table and "never ran" in table

    def test_steal_cli_honours_the_liveness_guard(
        self, synthetic_campaign, tmp_path
    ):
        from repro.distrib import write_heartbeat
        from repro.experiments.cli import main

        manifests = _plan(synthetic_campaign, tmp_path, 2)
        write_heartbeat(manifests[1].heartbeat_path, 1, 3)
        with pytest.raises(ShardError, match="may still be running"):
            main([
                "shard", "steal", str(tmp_path), "1",
                "--stale-after", "3600",
            ])

    def test_shard_run_retry_flag_and_quarantine_exit(
        self, real_campaign, tmp_path, monkeypatch, capsys
    ):
        from repro.distrib.supervise import QUARANTINE_REPORT_PREFIX
        from repro.experiments.cli import main

        manifests = _plan(real_campaign, tmp_path, 1)
        plan = FaultPlan(rules=(
            FaultRule(scope="task", fault="fatal", match="0/1", times=99),
        ))
        monkeypatch.setenv(
            FAULT_PLAN_ENV, str(plan.save(tmp_path / "plan.json"))
        )
        code = main([
            "shard", "run", str(manifests[0].manifest_path),
            "--retry", json.dumps(FAST.to_dict()),
        ])
        assert code == QUARANTINE_EXIT
        err = capsys.readouterr().err
        report_line = next(
            line for line in err.splitlines()
            if line.startswith(QUARANTINE_REPORT_PREFIX)
        )
        records = json.loads(report_line[len(QUARANTINE_REPORT_PREFIX):])
        assert [r["task_id"] for r in records] == ["0/1"]
