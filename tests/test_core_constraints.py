"""Tests for repro.core.constraints (Equations 1-4)."""

import numpy as np
import pytest

from repro import line_platform, validate_allocation
from repro.core.allocation import Allocation
from repro.core.constraints import allocation_violations
from repro.util.errors import ValidationError


@pytest.fixture
def platform():
    # line: C0 - C1 - C2, speed 100, g 50, bw 10, max_connect 4
    return line_platform(3, g=50.0)


def _empty(platform):
    return Allocation.zeros(platform.n_clusters)


class TestValidCases:
    def test_empty_allocation_valid(self, platform):
        assert allocation_violations(platform, _empty(platform)).ok

    def test_local_only_valid(self, platform):
        a = _empty(platform)
        for k in range(3):
            a.alpha[k, k] = 100.0
        assert allocation_violations(platform, a).ok

    def test_remote_within_limits(self, platform):
        a = _empty(platform)
        a.alpha[0, 1] = 10.0
        a.beta[0, 1] = 1
        report = allocation_violations(platform, a)
        assert report.ok, report.violations

    def test_validate_returns_report(self, platform):
        report = validate_allocation(platform, _empty(platform))
        assert report.ok and bool(report)


class TestEquation1Compute:
    def test_over_speed_detected(self, platform):
        a = _empty(platform)
        a.alpha[0, 0] = 150.0
        report = allocation_violations(platform, a)
        assert any("Eq.(1)" in v for v in report.violations)

    def test_combined_local_and_remote_load(self, platform):
        a = _empty(platform)
        a.alpha[1, 1] = 95.0
        a.alpha[0, 1] = 10.0
        a.beta[0, 1] = 1
        report = allocation_violations(platform, a)
        assert any("Eq.(1)" in v for v in report.violations)


class TestEquation2LocalLink:
    def test_outgoing_plus_incoming_counted(self, platform):
        a = _empty(platform)
        # 30 out and 30 in on C1's g=50 link -> violation.
        a.alpha[1, 0] = 30.0
        a.beta[1, 0] = 3
        a.alpha[0, 1] = 30.0
        a.beta[0, 1] = 3
        report = allocation_violations(platform, a)
        assert any("Eq.(2)" in v for v in report.violations)

    def test_local_compute_not_counted(self, platform):
        a = _empty(platform)
        a.alpha[0, 0] = 100.0  # uses no link at all
        a.alpha[0, 1] = 10.0
        a.beta[0, 1] = 1
        assert allocation_violations(platform, a).ok


class TestEquation3Connections:
    def test_per_link_count(self, platform):
        a = _empty(platform)
        # seg0 carries routes (0,1), (0,2), (1,0), ... max_connect=4.
        a.beta[0, 1] = 3
        a.beta[1, 0] = 2
        report = allocation_violations(platform, a)
        assert any("Eq.(3)" in v and "seg0" in v for v in report.violations)

    def test_shared_middle_link(self, platform):
        a = _empty(platform)
        a.beta[0, 2] = 2  # uses seg0+seg1
        a.beta[1, 2] = 2  # uses seg1
        a.alpha[0, 2] = 1.0
        a.alpha[1, 2] = 1.0
        assert allocation_violations(platform, a).ok
        a.beta[2, 1] = 1  # seg1 now at 5 > 4
        report = allocation_violations(platform, a)
        assert any("seg1" in v for v in report.violations)


class TestEquation4Bandwidth:
    def test_alpha_bounded_by_beta_times_bw(self, platform):
        a = _empty(platform)
        a.alpha[0, 1] = 15.0
        a.beta[0, 1] = 1  # cap = 10
        report = allocation_violations(platform, a)
        assert any("Eq.(4)" in v for v in report.violations)

    def test_two_connections_double_cap(self, platform):
        a = _empty(platform)
        a.alpha[0, 1] = 15.0
        a.beta[0, 1] = 2  # cap = 20
        assert allocation_violations(platform, a).ok

    def test_bottleneck_over_route(self, platform):
        a = _empty(platform)
        a.alpha[0, 2] = 10.0
        a.beta[0, 2] = 1  # min bw over seg0, seg1 = 10
        assert allocation_violations(platform, a).ok


class TestStructural:
    def test_negative_alpha(self, platform):
        a = _empty(platform)
        a.alpha[0, 1] = -1.0
        report = allocation_violations(platform, a)
        assert any("negative" in v for v in report.violations)

    def test_negative_beta(self, platform):
        a = _empty(platform)
        a.beta[0, 1] = -1
        report = allocation_violations(platform, a)
        assert any("negative" in v for v in report.violations)

    def test_traffic_without_route(self):
        # Two disconnected clusters.
        from repro import Cluster, Platform

        platform = Platform(
            [Cluster("A", 10.0, 10.0, "R0"), Cluster("B", 10.0, 10.0, "R1")],
            ["R0", "R1"],
            [],
        )
        a = Allocation.zeros(2)
        a.alpha[0, 1] = 1.0
        report = allocation_violations(platform, a)
        assert any("unconnected" in v for v in report.violations)

    def test_size_mismatch_short_circuits(self, platform):
        report = allocation_violations(platform, Allocation.zeros(5))
        assert len(report.violations) == 1

    def test_raise_on_invalid(self, platform):
        a = _empty(platform)
        a.alpha[0, 0] = 1e6
        with pytest.raises(ValidationError) as err:
            validate_allocation(platform, a)
        assert err.value.violations

    def test_tolerance_respected(self, platform):
        a = _empty(platform)
        a.alpha[0, 0] = 100.0 + 1e-9  # within default tol
        assert allocation_violations(platform, a).ok

    def test_report_repr(self, platform):
        ok = allocation_violations(platform, _empty(platform))
        assert "ok" in repr(ok)
        bad = Allocation.zeros(3)
        bad.alpha[0, 0] = 1e9
        report = allocation_violations(platform, bad)
        assert "violation" in repr(report)
