"""Public-API surface snapshot.

``tests/data/api_surface.json`` is the checked-in manifest of what
``repro`` and its pinned subpackages (``repro.api``, ``repro.distrib``,
``repro.dynamic``, ``repro.obs``, ``repro.service``) export. Any
addition,
rename or removal fails here first, forcing the change to be
deliberate: update the manifest in the same commit (and mention the
surface change in CHANGES.md). ``scripts/verify.sh`` runs this file as
its own step.
"""

import json
from pathlib import Path

import pytest

MANIFEST = Path(__file__).resolve().parent / "data" / "api_surface.json"

PINNED_MODULES = [
    "repro", "repro.api", "repro.distrib", "repro.dynamic", "repro.obs",
    "repro.service",
]


def load_manifest() -> dict:
    with MANIFEST.open() as fh:
        return json.load(fh)


def test_manifest_covers_every_pinned_module():
    assert sorted(load_manifest()) == sorted(PINNED_MODULES)


@pytest.mark.parametrize("module_name", PINNED_MODULES)
def test_all_matches_manifest(module_name):
    import importlib

    module = importlib.import_module(module_name)
    recorded = load_manifest()[module_name]
    actual = sorted(module.__all__)
    assert actual == recorded, (
        f"{module_name}.__all__ drifted from tests/data/api_surface.json; "
        "if the change is intentional, regenerate the manifest"
    )


@pytest.mark.parametrize("module_name", PINNED_MODULES)
def test_exports_resolve_and_are_complete(module_name):
    """Every advertised name exists, and ``__all__`` has no duplicates."""
    import importlib

    module = importlib.import_module(module_name)
    assert len(module.__all__) == len(set(module.__all__))
    for name in module.__all__:
        assert getattr(module, name, None) is not None or name == "__version__"
        assert hasattr(module, name), f"{module_name}.{name} does not resolve"


def test_star_import_honours_all():
    namespace: dict = {}
    exec("from repro import *", namespace)  # noqa: S102 - test-only
    exported = {k for k in namespace if not k.startswith("__")}
    manifest = set(load_manifest()["repro"]) - {"__version__"}
    assert exported == manifest
