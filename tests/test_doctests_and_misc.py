"""Doctest execution for modules with examples, plus small uncovered paths."""

import doctest

import numpy as np
import pytest

import repro.platform.presets
import repro.util.tables
from repro import SteadyStateProblem, line_platform, solve
from repro.lp.builder import build_lp
from repro.lp.scipy_backend import solve_lp_scipy


class TestDoctests:
    @pytest.mark.parametrize(
        "module",
        [repro.util.tables, repro.platform.presets],
        ids=lambda m: m.__name__,
    )
    def test_module_doctests(self, module):
        failures, tested = doctest.testmod(module, verbose=False).failed, True
        assert failures == 0

    def test_timer_doctest(self):
        import repro.util.timing

        result = doctest.testmod(repro.util.timing, verbose=False)
        assert result.failed == 0


class TestBaseThroughputOffsets:
    def test_offset_raises_maxmin_bound(self):
        """With base throughput b for every app, the MAXMIN LP value is
        at least min pi_k * b_k (the base alone secures it)."""
        platform = line_platform(3, g=50.0)
        problem = SteadyStateProblem(platform, objective="maxmin")
        base = np.array([40.0, 10.0, 25.0])
        plain = solve_lp_scipy(build_lp(problem)).value
        offset = solve_lp_scipy(build_lp(problem, base_throughputs=base)).value
        assert offset >= plain - 1e-9
        assert offset >= float(base.min()) - 1e-9

    def test_bad_offset_shape_rejected(self):
        problem = SteadyStateProblem(line_platform(2), objective="maxmin")
        with pytest.raises(ValueError):
            build_lp(problem, base_throughputs=np.zeros(5))

    def test_sum_objective_ignores_offsets(self):
        problem = SteadyStateProblem(line_platform(2), objective="sum")
        a = solve_lp_scipy(build_lp(problem)).value
        b = solve_lp_scipy(
            build_lp(problem, base_throughputs=np.array([5.0, 5.0]))
        ).value
        assert a == pytest.approx(b)


class TestMiscSolverPaths:
    def test_milp_time_limit_parameter_accepted(self, problem_factory):
        problem = problem_factory(seed=0, n_clusters=3)
        result = solve(problem, "milp", time_limit=60.0)
        assert result.allocation is not None

    def test_solve_validates_output(self, problem_factory):
        """The façade re-validates; a valid heuristic passes through."""
        problem = problem_factory(seed=1, n_clusters=4)
        result = solve(problem, "lprg-it")
        assert problem.check(result.allocation).ok
