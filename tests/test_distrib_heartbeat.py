"""Heartbeat sidecars: torn-file tolerance and the status schemas."""

import json

import pytest

from repro.distrib import build_shard_manifests, run_shard
from repro.distrib.manifest import write_manifests
from repro.distrib.runner import read_heartbeat, write_heartbeat
from repro.experiments.cli import main
from repro.experiments.config import DEFAULT_SCENARIO, sample_settings
from repro.util.rng import seed_sequence_of


class TestReadHeartbeat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "shard-0000.heartbeat"
        write_heartbeat(path, 3, 10)
        data = read_heartbeat(path)
        assert data["tasks_done"] == 3
        assert data["n_tasks"] == 10
        assert isinstance(data["time"], float)
        assert isinstance(data["pid"], int)
        assert "metrics" not in data

    def test_metrics_snapshot_round_trips(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("repro_shard_tasks_folded_total").inc(5)
        path = tmp_path / "shard-0000.heartbeat"
        write_heartbeat(path, 5, 9, metrics=registry.state_dict())
        data = read_heartbeat(path)
        merged = MetricsRegistry.from_state(data["metrics"])
        assert merged.counter("repro_shard_tasks_folded_total").value == 5

    def test_missing_file_is_none(self, tmp_path):
        assert read_heartbeat(tmp_path / "nope.heartbeat") is None

    @pytest.mark.parametrize(
        "content",
        [
            "",  # zero-length (crash between open and write)
            '{"tasks_done": 3, "n_ta',  # torn mid-write
            '{"tasks_done":',  # torn mid-value
            "not json at all",
            "[1, 2, 3]",  # valid JSON, wrong shape
            '"just a string"',
        ],
    )
    def test_torn_or_bogus_content_is_none(self, tmp_path, content):
        path = tmp_path / "shard-0000.heartbeat"
        path.write_text(content)
        assert read_heartbeat(path) is None

    def test_unreadable_path_is_none(self, tmp_path):
        # a directory where a file is expected: read_text raises OSError
        path = tmp_path / "shard-0000.heartbeat"
        path.mkdir()
        assert read_heartbeat(path) is None


@pytest.fixture(scope="module")
def campaign_dir(tmp_path_factory):
    shard_dir = tmp_path_factory.mktemp("campaign")
    settings = sample_settings(2, rng=4, k_values=[3])
    manifests = build_shard_manifests(
        settings, DEFAULT_SCENARIO, ("greedy",), ("maxmin",), 1,
        seed_sequence_of(4), n_shards=2, shard_dir=shard_dir,
    )
    write_manifests(manifests, shard_dir)
    for manifest in manifests:
        run_shard(manifest)
    return shard_dir


class TestShardStatusJson:
    def test_schema(self, campaign_dir, capsys):
        assert main(["shard", "status", str(campaign_dir), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert isinstance(status, list) and len(status) == 2
        for entry in status:
            assert set(entry) >= {
                "shard_index", "task_start", "task_stop", "n_tasks",
                "folded", "complete", "problem", "heartbeat",
                "heartbeat_age", "manifest_path",
            }
            assert entry["complete"] is True
            assert entry["folded"] == entry["n_tasks"]
            assert entry["heartbeat"]["tasks_done"] == entry["n_tasks"]
            assert entry["heartbeat_age"] >= 0.0

    def test_metrics_flag_merges_shard_snapshots(self, campaign_dir, capsys):
        assert main(
            ["shard", "status", str(campaign_dir), "--json", "--metrics"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"shards", "metrics"}
        from repro.obs.metrics import MetricsRegistry

        merged = MetricsRegistry.from_state(payload["metrics"])
        folded = merged.counter("repro_shard_tasks_folded_total").value
        assert folded == sum(e["folded"] for e in payload["shards"])

    def test_metrics_flag_renders_prometheus_in_table_mode(
        self, campaign_dir, capsys
    ):
        assert main(["shard", "status", str(campaign_dir), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_shard_tasks_folded_total counter" in out
        assert "repro_shard_task_seconds_bucket" in out

    def test_status_survives_a_torn_heartbeat(self, campaign_dir, capsys):
        heartbeat = campaign_dir / "shard-0000.heartbeat"
        original = heartbeat.read_text()
        try:
            heartbeat.write_text(original[: len(original) // 2])
            assert main(
                ["shard", "status", str(campaign_dir), "--json", "--metrics"]
            ) == 0
            payload = json.loads(capsys.readouterr().out)
            torn = [
                e for e in payload["shards"] if e["shard_index"] == 0
            ][0]
            assert torn["heartbeat"] is None
            assert torn["heartbeat_age"] is None
            # the torn shard contributes nothing; the other still merges
            from repro.obs.metrics import MetricsRegistry

            merged = MetricsRegistry.from_state(payload["metrics"])
            assert merged.counter(
                "repro_shard_tasks_folded_total"
            ).value == 1
        finally:
            heartbeat.write_text(original)
